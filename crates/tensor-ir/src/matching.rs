//! The two-step tensorize matching algorithm (§IV-B of the paper).
//!
//! Given a compute workload and a hardware intrinsic, both lowered to
//! [`Tst`]s, the matcher enumerates every legal *tensorize choice*: a subset
//! of the compute tree's leaves plus a bijection onto the intrinsic tree's
//! leaves such that
//!
//! 1. **index matching** — the bijection is consistent on repeated indices
//!    (if two intrinsic leaves denote the same loop variable, their images
//!    must denote the same compute variable, and vice versa), spatial
//!    intrinsic indices map to spatial compute indices, reductions to
//!    reductions (this is what makes Fig. 4's choice #2 illegal), and a
//!    selected compute variable's *total* occurrence count must equal the
//!    intrinsic variable's — an occurrence left outside the subset would
//!    make the intrinsic operand secretly vary across intrinsic
//!    iterations. This is what limits MTTKRP's second stage to GEMV
//!    sub-workloads (§VII-B);
//! 2. **structure matching** — for every pair of matched leaves, the lowest
//!    common ancestor in the intrinsic tree and in the compute tree carry
//!    the same operation.
//!
//! The paper reports six legal choices for mapping a 2-D convolution onto a
//! GEMM intrinsic after examining 126 (= C(9,4)) leaf subsets. Four of them
//! pass the strict LCA test; the remaining two pair a spatial loop with a
//! reduction loop from the *same* affine window (`x` with `r`, or `y` with
//! `s`) and therefore require a local data rearrangement of the overlapping
//! input window. We reproduce all six with
//! [`MatchOptions::allow_rearrangement`] (the default) and the strict four
//! with it disabled; choices that need the rearrangement are flagged so the
//! cost model can charge for it.

use crate::expr::Computation;
use crate::index::IndexId;
use crate::tst::{Tst, TstOp};
use runtime::{Fingerprinter, StableFingerprint};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Options controlling the matcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchOptions {
    /// Accept choices whose structure match only succeeds up to a local data
    /// rearrangement (an `Add` node on the compute side where the intrinsic
    /// has a plain access). The paper allows these ("different node orders
    /// give different tensorize choices with data rearrangements, like the
    /// matrix transpositions of choice #3").
    pub allow_rearrangement: bool,
    /// Fold choices that differ only by permuting the intrinsic's spatial
    /// indices (transposed variants) into one choice.
    pub fold_transposed: bool,
    /// Upper bound on returned choices (safety valve for large trees).
    pub max_choices: usize,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            allow_rearrangement: true,
            fold_transposed: true,
            max_choices: 4096,
        }
    }
}

impl MatchOptions {
    /// Strict structural matching: no rearrangement, keep transposed
    /// variants distinct.
    pub fn strict() -> Self {
        MatchOptions {
            allow_rearrangement: false,
            fold_transposed: false,
            max_choices: 4096,
        }
    }
}

/// A legal way to decompose a computation into sub-workloads executed by a
/// hardware intrinsic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorizeChoice {
    /// Name of the matched intrinsic computation.
    pub intrinsic: String,
    /// Mapping from intrinsic index variables to compute index variables.
    /// Sorted by intrinsic index id.
    pub var_map: Vec<(IndexId, IndexId)>,
    /// Whether the choice relies on a local data rearrangement (overlapping
    /// window linearization / transposition).
    pub needs_rearrangement: bool,
}

impl StableFingerprint for TensorizeChoice {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(&self.intrinsic);
        self.var_map.fingerprint_into(fp);
        fp.write_bool(self.needs_rearrangement);
    }
}

impl TensorizeChoice {
    /// The compute-side loop variables absorbed by the intrinsic.
    pub fn tensorized_indices(&self) -> Vec<IndexId> {
        let mut v: Vec<IndexId> = self.var_map.iter().map(|&(_, c)| c).collect();
        v.sort();
        v.dedup();
        v
    }

    /// The compute variable assigned to a given intrinsic variable, if any.
    pub fn image_of(&self, intrinsic_var: IndexId) -> Option<IndexId> {
        self.var_map
            .iter()
            .find(|&&(q, _)| q == intrinsic_var)
            .map(|&(_, c)| c)
    }

    /// Human-readable description, e.g. `gemm{i<-k, j<-x, k<-c}`.
    pub fn describe(&self, compute: &Computation, intrinsic: &Computation) -> String {
        let pairs: Vec<String> = self
            .var_map
            .iter()
            .map(|&(q, c)| format!("{}<-{}", intrinsic.index(q).name, compute.index(c).name))
            .collect();
        let star = if self.needs_rearrangement { "*" } else { "" };
        format!("{}{{{}}}{}", self.intrinsic, pairs.join(", "), star)
    }
}

/// Statistics of one matcher run, mirroring the counts reported in §IV-B.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Number of leaf subsets examined (C(m, n)).
    pub subsets_examined: usize,
    /// Number of leaf bijections that passed index matching.
    pub index_matches: usize,
    /// Number of bijections that also passed structure matching.
    pub structure_matches: usize,
}

/// Finds all legal tensorize choices for `compute` against `intrinsic`.
///
/// # Example
/// ```
/// use tensor_ir::{suites, intrinsics, matching::{find_tensorize_choices, MatchOptions}};
/// let conv = suites::conv2d_workload("c", 64, 64, 56, 56, 3, 3);
/// let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
/// let choices = find_tensorize_choices(&conv.comp, &gemm.comp, &MatchOptions::default());
/// assert_eq!(choices.len(), 6); // as reported in the paper, §IV-B
/// ```
pub fn find_tensorize_choices(
    compute: &Computation,
    intrinsic: &Computation,
    opts: &MatchOptions,
) -> Vec<TensorizeChoice> {
    find_tensorize_choices_with_stats(compute, intrinsic, opts).0
}

/// Like [`find_tensorize_choices`] but also returns [`MatchStats`].
pub fn find_tensorize_choices_with_stats(
    compute: &Computation,
    intrinsic: &Computation,
    opts: &MatchOptions,
) -> (Vec<TensorizeChoice>, MatchStats) {
    let ctst = Tst::from_computation(compute);
    let qtst = Tst::from_computation(intrinsic);
    let mut stats = MatchStats::default();

    let q_leaves: Vec<usize> = qtst.leaves().to_vec();
    let c_leaves: Vec<usize> = ctst.leaves().to_vec();
    // Total occurrence count of each compute variable across the whole
    // compute tree (for the coverage condition of index matching).
    let mut c_totals: BTreeMap<IndexId, usize> = BTreeMap::new();
    for &l in &c_leaves {
        *c_totals.entry(ctst.leaf_index(l)).or_insert(0) += 1;
    }
    let n = q_leaves.len();
    let m = c_leaves.len();
    if n == 0 || n > m {
        return (Vec::new(), stats);
    }

    // Group intrinsic leaves by their index variable.
    let q_groups = group_by_var(&qtst, &q_leaves);

    /// A candidate's var-level mapping plus its rearrangement flag.
    type ChoiceKey = (Vec<(IndexId, IndexId)>, bool);
    /// A [`ChoiceKey`] widened by the sorted spatial image (fold key).
    type FoldKey = (Vec<IndexId>, Vec<(IndexId, IndexId)>, bool);
    let mut seen: BTreeSet<ChoiceKey> = BTreeSet::new();
    let mut fold_keys: BTreeSet<FoldKey> = BTreeSet::new();
    let mut out = Vec::new();

    for subset in Combinations::new(m, n) {
        stats.subsets_examined += 1;
        let chosen: Vec<usize> = subset.iter().map(|&i| c_leaves[i]).collect();
        let c_groups = group_by_var(&ctst, &chosen);
        if c_groups.len() != q_groups.len() {
            continue;
        }
        // Coverage: every selected compute variable must appear in the
        // subset with all of its occurrences.
        if c_groups.iter().any(|(cv, occ)| c_totals[cv] != occ.len()) {
            continue;
        }
        // Enumerate var-level bijections preserving (group size, kind).
        for var_bij in var_bijections(intrinsic, compute, &q_groups, &c_groups) {
            // Enumerate leaf-level bijections within each matched group.
            for leaf_bij in leaf_bijections(&q_groups, &c_groups, &var_bij) {
                stats.index_matches += 1;
                if let Some(needs_rearrangement) = structure_match(&qtst, &ctst, &leaf_bij, opts) {
                    stats.structure_matches += 1;
                    let mut var_map: Vec<(IndexId, IndexId)> =
                        var_bij.iter().map(|(&q, &c)| (q, c)).collect();
                    var_map.sort();
                    if !seen.insert((var_map.clone(), needs_rearrangement)) {
                        continue;
                    }
                    if opts.fold_transposed {
                        let key = fold_key(intrinsic, &var_map, needs_rearrangement);
                        if !fold_keys.insert(key) {
                            continue;
                        }
                    }
                    out.push(TensorizeChoice {
                        intrinsic: intrinsic.name.clone(),
                        var_map,
                        needs_rearrangement,
                    });
                    if out.len() >= opts.max_choices {
                        return (out, stats);
                    }
                }
            }
        }
    }
    (out, stats)
}

/// The full partition space: all legal tensorize choices of `compute`
/// against each of the given intrinsics (§IV-B: "the partition space of each
/// intrinsic is included in the software design space").
pub fn partition_space(
    compute: &Computation,
    intrinsics: &[&Computation],
    opts: &MatchOptions,
) -> Vec<TensorizeChoice> {
    intrinsics
        .iter()
        .flat_map(|q| find_tensorize_choices(compute, q, opts))
        .collect()
}

fn fold_key(
    intrinsic: &Computation,
    var_map: &[(IndexId, IndexId)],
    needs: bool,
) -> (Vec<IndexId>, Vec<(IndexId, IndexId)>, bool) {
    // Spatial intrinsic vars: keep only the *set* of compute vars they bind.
    let mut spatial: Vec<IndexId> = var_map
        .iter()
        .filter(|&&(q, _)| intrinsic.index(q).is_spatial())
        .map(|&(_, c)| c)
        .collect();
    spatial.sort();
    let reductions: Vec<(IndexId, IndexId)> = var_map
        .iter()
        .filter(|&&(q, _)| intrinsic.index(q).is_reduction())
        .copied()
        .collect();
    (spatial, reductions, needs)
}

type VarGroups = Vec<(IndexId, Vec<usize>)>;

fn group_by_var(tst: &Tst, leaves: &[usize]) -> VarGroups {
    let mut map: BTreeMap<IndexId, Vec<usize>> = BTreeMap::new();
    for &l in leaves {
        map.entry(tst.leaf_index(l)).or_default().push(l);
    }
    map.into_iter().collect()
}

/// All bijections between intrinsic and compute variable groups that
/// preserve occurrence count and index kind.
fn var_bijections(
    intrinsic: &Computation,
    compute: &Computation,
    q_groups: &VarGroups,
    c_groups: &VarGroups,
) -> Vec<BTreeMap<IndexId, IndexId>> {
    let mut result = Vec::new();
    let mut used = vec![false; c_groups.len()];
    let mut current: Vec<usize> = Vec::with_capacity(q_groups.len());

    #[allow(clippy::too_many_arguments)] // recursive worker threading its whole state
    fn rec(
        qi: usize,
        intrinsic: &Computation,
        compute: &Computation,
        q_groups: &VarGroups,
        c_groups: &VarGroups,
        used: &mut [bool],
        current: &mut Vec<usize>,
        result: &mut Vec<BTreeMap<IndexId, IndexId>>,
    ) {
        if qi == q_groups.len() {
            let map = q_groups
                .iter()
                .zip(current.iter())
                .map(|((qv, _), &ci)| (*qv, c_groups[ci].0))
                .collect();
            result.push(map);
            return;
        }
        let (qv, q_occ) = &q_groups[qi];
        for ci in 0..c_groups.len() {
            if used[ci] {
                continue;
            }
            let (cv, c_occ) = &c_groups[ci];
            if q_occ.len() != c_occ.len() {
                continue;
            }
            if intrinsic.index(*qv).kind != compute.index(*cv).kind {
                continue;
            }
            used[ci] = true;
            current.push(ci);
            rec(
                qi + 1,
                intrinsic,
                compute,
                q_groups,
                c_groups,
                used,
                current,
                result,
            );
            current.pop();
            used[ci] = false;
        }
    }
    rec(
        0,
        intrinsic,
        compute,
        q_groups,
        c_groups,
        &mut used,
        &mut current,
        &mut result,
    );
    result
}

/// For a fixed variable bijection, all leaf-level bijections (permuting
/// occurrences within each group).
fn leaf_bijections(
    q_groups: &VarGroups,
    c_groups: &VarGroups,
    var_bij: &BTreeMap<IndexId, IndexId>,
) -> Vec<Vec<(usize, usize)>> {
    let mut per_group: Vec<Vec<Vec<(usize, usize)>>> = Vec::new();
    for (qv, q_occ) in q_groups {
        let cv = var_bij[qv];
        let c_occ = &c_groups
            .iter()
            .find(|(v, _)| *v == cv)
            .expect("var in groups")
            .1;
        let mut group_opts = Vec::new();
        for perm in permutations(c_occ.len()) {
            let pairs: Vec<(usize, usize)> = q_occ
                .iter()
                .zip(perm.iter())
                .map(|(&q, &p)| (q, c_occ[p]))
                .collect();
            group_opts.push(pairs);
        }
        per_group.push(group_opts);
    }
    // Cartesian product across groups.
    let mut result: Vec<Vec<(usize, usize)>> = vec![Vec::new()];
    for group_opts in per_group {
        let mut next = Vec::new();
        for base in &result {
            for opt in &group_opts {
                let mut combined = base.clone();
                combined.extend_from_slice(opt);
                next.push(combined);
            }
        }
        result = next;
    }
    result
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Structure matching: checks every pair of matched leaves. Returns
/// `Some(needs_rearrangement)` on success, `None` on failure.
fn structure_match(
    qtst: &Tst,
    ctst: &Tst,
    leaf_bij: &[(usize, usize)],
    opts: &MatchOptions,
) -> Option<bool> {
    let mut needs = false;
    for a in 0..leaf_bij.len() {
        for b in (a + 1)..leaf_bij.len() {
            let (qa, ca) = leaf_bij[a];
            let (qb, cb) = leaf_bij[b];
            let q_op = qtst.op(qtst.lca(qa, qb));
            let c_op = ctst.op(ctst.lca(ca, cb));
            if q_op == c_op {
                continue;
            }
            // Relaxed case: intrinsic expects a plain access but the compute
            // leaves share an affine window — legal with a rearrangement.
            if opts.allow_rearrangement && q_op == TstOp::Access && c_op == TstOp::Add {
                needs = true;
                continue;
            }
            return None;
        }
    }
    Some(needs)
}

/// Iterator over k-combinations of `0..n` in lexicographic order.
struct Combinations {
    n: usize,
    k: usize,
    current: Vec<usize>,
    done: bool,
}

impl Combinations {
    fn new(n: usize, k: usize) -> Self {
        Combinations {
            n,
            k,
            current: (0..k).collect(),
            done: k > n,
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let result = self.current.clone();
        // Advance.
        let (n, k) = (self.n, self.k);
        if k == 0 {
            self.done = true;
            return Some(result);
        }
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.current[i] != i + n - k {
                self.current[i] += 1;
                for j in (i + 1)..k {
                    self.current[j] = self.current[j - 1] + 1;
                }
                break;
            }
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrinsics;
    use crate::suites;

    fn conv() -> Computation {
        suites::conv2d_workload("conv", 64, 64, 56, 56, 3, 3).comp
    }

    #[test]
    fn combinations_count_is_binomial() {
        assert_eq!(Combinations::new(9, 4).count(), 126);
        assert_eq!(Combinations::new(5, 5).count(), 1);
        assert_eq!(Combinations::new(4, 0).count(), 1);
        assert_eq!(Combinations::new(3, 4).count(), 0);
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        let all: Vec<Vec<usize>> = Combinations::new(6, 3).collect();
        assert_eq!(all.len(), 20);
        for c in &all {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        let set: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn conv_to_gemm_examines_126_subsets_and_finds_6_choices() {
        // Reproduces §IV-B: "the matching examines 126 leaf subsets and
        // finds six legal tensorize choices".
        let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
        let (choices, stats) =
            find_tensorize_choices_with_stats(&conv(), &gemm.comp, &MatchOptions::default());
        assert_eq!(stats.subsets_examined, 126);
        assert_eq!(choices.len(), 6);
    }

    #[test]
    fn conv_to_gemm_strict_finds_4_choices_without_rearrangement() {
        let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
        let mut opts = MatchOptions::strict();
        opts.fold_transposed = true;
        let choices = find_tensorize_choices(&conv(), &gemm.comp, &opts);
        assert_eq!(choices.len(), 4);
        assert!(choices.iter().all(|c| !c.needs_rearrangement));
    }

    #[test]
    fn conv_to_gemm_reduction_maps_to_reduction() {
        let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
        let conv = conv();
        let gk = gemm.comp.index_by_name("k").unwrap();
        for ch in find_tensorize_choices(&conv, &gemm.comp, &MatchOptions::default()) {
            let image = ch.image_of(gk).unwrap();
            assert!(
                conv.index(image).is_reduction(),
                "choice {ch:?} maps reduction to spatial"
            );
        }
    }

    #[test]
    fn conv_spatial_side_is_k_plus_x_or_y() {
        // §VII-B: "three loops of convolutions match the GEMM intrinsic:
        // k, x/y, and c/r/s".
        let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
        let conv = conv();
        let ck = conv.index_by_name("k").unwrap();
        for ch in find_tensorize_choices(&conv, &gemm.comp, &MatchOptions::default()) {
            let spatials: Vec<IndexId> = ch
                .var_map
                .iter()
                .filter(|&&(q, _)| gemm.comp.index(q).is_spatial())
                .map(|&(_, c)| c)
                .collect();
            assert!(
                spatials.contains(&ck),
                "k must always be tensorized: {ch:?}"
            );
        }
    }

    #[test]
    fn rearrangement_choices_pair_window_loops() {
        let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
        let conv = conv();
        let choices = find_tensorize_choices(&conv, &gemm.comp, &MatchOptions::default());
        let rearranged: Vec<_> = choices.iter().filter(|c| c.needs_rearrangement).collect();
        assert_eq!(rearranged.len(), 2);
        let x = conv.index_by_name("x").unwrap();
        let r = conv.index_by_name("r").unwrap();
        let y = conv.index_by_name("y").unwrap();
        let s = conv.index_by_name("s").unwrap();
        for ch in rearranged {
            let vars = ch.tensorized_indices();
            let xr = vars.contains(&x) && vars.contains(&r);
            let ys = vars.contains(&y) && vars.contains(&s);
            assert!(xr || ys, "rearranged choice must pair a window: {ch:?}");
        }
    }

    #[test]
    fn gemm_to_gemv_has_choices() {
        let gemm_wl = suites::gemm_workload("g", 256, 256, 256);
        let gemv = intrinsics::gemv_intrinsic(16, 16);
        let choices = find_tensorize_choices(&gemm_wl.comp, &gemv.comp, &MatchOptions::default());
        assert!(!choices.is_empty());
        // GEMV's reduction j must bind GEMM's reduction k.
        let gj = gemv.comp.index_by_name("j").unwrap();
        let gk = gemm_wl.comp.index_by_name("k").unwrap();
        for ch in &choices {
            assert_eq!(ch.image_of(gj), Some(gk));
        }
    }

    #[test]
    fn gemm_to_dot_matches_reduction_only() {
        let gemm_wl = suites::gemm_workload("g", 64, 64, 64);
        let dot = intrinsics::dot_intrinsic(64);
        let choices = find_tensorize_choices(&gemm_wl.comp, &dot.comp, &MatchOptions::default());
        assert_eq!(choices.len(), 1);
        assert_eq!(choices[0].tensorized_indices().len(), 1);
    }

    #[test]
    fn conv_to_conv2d_intrinsic_matches_identically() {
        let conv2d = intrinsics::conv2d_intrinsic(16, 8, 3, 3);
        let choices = find_tensorize_choices(&conv(), &conv2d.comp, &MatchOptions::default());
        assert!(!choices.is_empty());
        // The full 9-leaf match covers all six conv loops.
        assert!(choices.iter().any(|c| c.tensorized_indices().len() == 6));
    }

    #[test]
    fn mttkrp_gemv_covers_four_loops_across_stages() {
        // §VII-B: "the GEMV intrinsic benefits four loops represented by
        // i, k, l, and j in MTTKRP" — over its two stages.
        let (s1, s2) = suites::mttkrp_stages("m", 128, 128, 128, 128);
        let gemv = intrinsics::gemv_intrinsic(16, 16);
        let mut covered: BTreeSet<String> = BTreeSet::new();
        for (wl, comp) in [(&s1, &s1.comp), (&s2, &s2.comp)] {
            let _ = wl;
            for ch in find_tensorize_choices(comp, &gemv.comp, &MatchOptions::default()) {
                for idx in ch.tensorized_indices() {
                    covered.insert(comp.index(idx).name.clone());
                }
            }
        }
        for name in ["i", "k", "l", "j"] {
            assert!(
                covered.contains(name),
                "GEMV should cover loop {name}: {covered:?}"
            );
        }
    }

    #[test]
    fn mttkrp_gemm_matches_stage1_only() {
        // §VII-B: "Only the first A×B stage can be divided into GEMM
        // sub-workloads and accelerated by the GEMM intrinsic."
        let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
        let opts = MatchOptions::default();
        let fused = suites::mttkrp_workload("m", 128, 128, 128, 128);
        assert!(find_tensorize_choices(&fused.comp, &gemm.comp, &opts).is_empty());
        let (s1, s2) = suites::mttkrp_stages("m", 128, 128, 128, 128);
        let c1 = find_tensorize_choices(&s1.comp, &gemm.comp, &opts);
        assert!(!c1.is_empty(), "stage 1 is a matricized GEMM");
        // Stage 2 is a per-j batched contraction — the GEMM operand M[i,k]
        // cannot secretly vary with j, so no GEMM choice exists.
        assert!(find_tensorize_choices(&s2.comp, &gemm.comp, &opts).is_empty());
        // The GEMM choices on stage 1 bind l (the reduction) plus j and one
        // of i/k — "three loops represented by i/k, l, and j".
        let l = s1.comp.index_by_name("l").unwrap();
        let j = s1.comp.index_by_name("j").unwrap();
        for ch in &c1 {
            let vars = ch.tensorized_indices();
            assert!(vars.contains(&l));
            assert!(vars.contains(&j));
        }
    }

    #[test]
    fn intrinsic_larger_than_compute_yields_nothing() {
        let tiny = Computation::builder("tiny")
            .spatial("i", 4)
            .output("O", &["i"])
            .input("A", &["i"])
            .build()
            .unwrap();
        let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
        assert!(find_tensorize_choices(&tiny, &gemm.comp, &MatchOptions::default()).is_empty());
    }

    #[test]
    fn max_choices_truncates() {
        let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
        let opts = MatchOptions {
            max_choices: 2,
            ..Default::default()
        };
        let choices = find_tensorize_choices(&conv(), &gemm.comp, &opts);
        assert_eq!(choices.len(), 2);
    }

    #[test]
    fn partition_space_unions_intrinsics() {
        let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
        let gemv = intrinsics::gemv_intrinsic(16, 16);
        let dot = intrinsics::dot_intrinsic(64);
        let conv = conv();
        let all = partition_space(
            &conv,
            &[&gemm.comp, &gemv.comp, &dot.comp],
            &MatchOptions::default(),
        );
        let per: usize = [&gemm.comp, &gemv.comp, &dot.comp]
            .iter()
            .map(|q| find_tensorize_choices(&conv, q, &MatchOptions::default()).len())
            .sum();
        assert_eq!(all.len(), per);
        assert!(all.len() > 6);
    }

    #[test]
    fn describe_is_informative() {
        let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
        let conv = conv();
        let choices = find_tensorize_choices(&conv, &gemm.comp, &MatchOptions::default());
        let desc = choices[0].describe(&conv, &gemm.comp);
        assert!(desc.starts_with("gemm{"));
        assert!(desc.contains("<-"));
    }

    #[test]
    fn fig4_gemv_choices_on_gemm_match_paper() {
        // Fig. 4: four tensorize choices for GEMM against vector
        // intrinsics. #1 (columns of N as GEMV vectors) and #3 (rows of M,
        // with transposition) are legal; #2 — treating a *row* of N as the
        // reduced vector — is illegal because it contracts GEMM's spatial
        // j and "outputs incorrect results".
        let gemm_wl = suites::gemm_workload("g", 64, 64, 64);
        let gemv = intrinsics::gemv_intrinsic(16, 16);
        let opts = MatchOptions {
            fold_transposed: false,
            ..Default::default()
        };
        let choices = find_tensorize_choices(&gemm_wl.comp, &gemv.comp, &opts);
        // Exactly the #1 and #3 mappings.
        assert_eq!(choices.len(), 2);
        let gi = gemv.comp.index_by_name("i").unwrap();
        let gj = gemv.comp.index_by_name("j").unwrap();
        let wi = gemm_wl.comp.index_by_name("i").unwrap();
        let wj = gemm_wl.comp.index_by_name("j").unwrap();
        let wk = gemm_wl.comp.index_by_name("k").unwrap();
        let spatial_images: BTreeSet<_> = choices.iter().map(|c| c.image_of(gi).unwrap()).collect();
        assert_eq!(spatial_images, BTreeSet::from([wi, wj]));
        for c in &choices {
            // The GEMV reduction always contracts GEMM's k — never the
            // spatial j (Fig. 4's illegal choice #2).
            assert_eq!(c.image_of(gj), Some(wk));
        }
    }

    #[test]
    fn fig4_axpy_choice_on_gemm() {
        // Fig. 4 choice #4: "multiply an element of M and a row of N to
        // match AXPY". The AXPY vector loop binds one of GEMM's spatial
        // loops; the scalar operand is implicit.
        let gemm_wl = suites::gemm_workload("g", 64, 64, 64);
        let axpy = intrinsics::axpy_intrinsic(16);
        let opts = MatchOptions {
            fold_transposed: false,
            ..Default::default()
        };
        let choices = find_tensorize_choices(&gemm_wl.comp, &axpy, &opts);
        assert!(!choices.is_empty());
        let ai = axpy.index_by_name("i").unwrap();
        for c in &choices {
            let img = c.image_of(ai).unwrap();
            assert!(gemm_wl.comp.index(img).is_spatial(), "{c:?}");
        }
    }

    #[test]
    fn permutations_are_exhaustive() {
        assert_eq!(permutations(0).len(), 1);
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        let p4 = permutations(4);
        assert_eq!(p4.len(), 24);
        let set: BTreeSet<_> = p4.iter().collect();
        assert_eq!(set.len(), 24);
    }
}
