//! The software DSE driver: heuristic top-k selection + Q-learning
//! revisions (§VI-B, Fig. 5(d)/(e)).

use std::sync::Arc;

use accel_model::arch::AcceleratorConfig;
use accel_model::{AnalyticBackend, CostBackend, CostModel, Metrics};
use dse::progress::{BatchUpdate, Progress};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use runtime::{Fingerprint, Fingerprinter, StableFingerprint, WorkerPool};
use tensor_ir::matching::TensorizeChoice;
use tensor_ir::workload::Workload;

use crate::heuristic::{Candidate, CandidatePool};
use crate::lowering;
use crate::qlearn::QLearner;
use crate::schedule::{Revision, Schedule, ScheduleContext, NUM_REVISIONS};
use crate::SwError;

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct ExplorerOptions {
    /// Initial candidate-pool size.
    pub pool: usize,
    /// Revision rounds ("the revision process may repeat for hundreds of
    /// rounds").
    pub rounds: usize,
    /// Valuable candidates revised per round.
    pub top_k: usize,
    /// Maximum pool size (pruned by value after each round).
    pub max_pool: usize,
    /// Use the Q-learning policy for revisions (`false` = random revision,
    /// the ablation baseline).
    pub use_qlearning: bool,
    /// Restrict exploration to one tensorize choice (used by the
    /// tensorize-comparison experiments and the AutoTVM baseline).
    pub fixed_choice: Option<TensorizeChoice>,
}

impl Default for ExplorerOptions {
    fn default() -> Self {
        ExplorerOptions {
            pool: 16,
            rounds: 24,
            top_k: 4,
            max_pool: 32,
            use_qlearning: true,
            fixed_choice: None,
        }
    }
}

impl StableFingerprint for ExplorerOptions {
    // Every knob changes which schedules get explored, so all of them key
    // memoized evaluation results.
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_usize(self.pool);
        fp.write_usize(self.rounds);
        fp.write_usize(self.top_k);
        fp.write_usize(self.max_pool);
        fp.write_bool(self.use_qlearning);
        self.fixed_choice.fingerprint_into(fp);
    }
}

/// The result of software optimization for one workload.
#[derive(Debug, Clone)]
pub struct OptimizedSoftware {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its metrics on the target accelerator.
    pub metrics: Metrics,
    /// Best latency after each round (convergence curve).
    pub history: Vec<f64>,
    /// Total schedules evaluated.
    pub evaluated: usize,
}

/// The software explorer; owns the RNG seed and the shared Q-network
/// ("the DQN is reused for all design points in a software space").
///
/// Schedule pricing dispatches through a pluggable [`CostBackend`]
/// ([`SoftwareExplorer::with_backend`]), defaulting to the fast analytic
/// tier. The backend changes which schedules look good and therefore the
/// entire exploration trajectory, so memoization layers must key results
/// by [`SoftwareExplorer::backend_fingerprint`] — and must re-read it
/// whenever the backend's internal state can legitimately move, as the
/// self-improving surrogate tier's fingerprint advances with every
/// training generation.
#[derive(Debug)]
pub struct SoftwareExplorer {
    seed: u64,
    backend: Arc<dyn CostBackend>,
    workers: WorkerPool,
    /// Optional per-round progress observer (see
    /// [`SoftwareExplorer::with_progress`]).
    progress: Option<Arc<dyn Progress>>,
}

impl SoftwareExplorer {
    /// Creates an explorer with the default analytic cost backend,
    /// evaluating serially.
    pub fn new(seed: u64) -> Self {
        SoftwareExplorer {
            seed,
            backend: Arc::new(AnalyticBackend::default()),
            workers: WorkerPool::serial(),
            progress: None,
        }
    }

    /// Creates an explorer with a custom analytic cost model.
    pub fn with_model(seed: u64, model: CostModel) -> Self {
        SoftwareExplorer::new(seed).with_backend(Arc::new(AnalyticBackend::new(model)))
    }

    /// Routes schedule pricing through the given cost backend.
    pub fn with_backend(mut self, backend: Arc<dyn CostBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The cost backend pricing this explorer's schedules.
    pub fn backend(&self) -> &Arc<dyn CostBackend> {
        &self.backend
    }

    /// Stable identity of the cost backend, for memoization keys.
    pub fn backend_fingerprint(&self) -> Fingerprint {
        let mut fp = Fingerprinter::new();
        self.backend.fingerprint_into(&mut fp);
        fp.finish()
    }

    /// Evaluates candidate pools and per-round revision batches on the
    /// given worker pool. Schedule *generation* and Q-learning updates
    /// stay serial, so results are identical at any worker count.
    pub fn with_workers(mut self, workers: WorkerPool) -> Self {
        self.workers = workers;
        self
    }

    /// Reports every revision round to `progress` (phase `"round"`) and
    /// stops the exploration early — returning the best schedule so far —
    /// when the observer answers `false`. This is how a resident engine
    /// observes and cancels long final optimizations; the observer is
    /// called from the thread driving [`SoftwareExplorer::optimize`], in
    /// round order, so observations never depend on worker scheduling.
    /// Observation changes neither the trajectory nor the result of a
    /// completed run.
    pub fn with_progress(mut self, progress: Arc<dyn Progress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Optimizes one workload for one accelerator.
    ///
    /// # Errors
    /// Returns [`SwError`] when no tensorize choice exists or no valid
    /// schedule fits the accelerator.
    pub fn optimize(
        &self,
        workload: &Workload,
        cfg: &AcceleratorConfig,
        opts: &ExplorerOptions,
    ) -> Result<OptimizedSoftware, SwError> {
        let intrinsic = cfg.intrinsic_comp();
        let mut ctx = ScheduleContext::new(workload, &intrinsic)?;
        if let Some(choice) = &opts.fixed_choice {
            ctx.choices.retain(|c| c.var_map == choice.var_map);
            if ctx.choices.is_empty() {
                ctx.choices.push(choice.clone());
            }
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut pool = CandidatePool::initialize_batched(
            &ctx,
            cfg,
            self.backend.as_ref(),
            opts.pool,
            &mut rng,
            &self.workers,
        )?;
        let mut qlearner = QLearner::new(self.seed ^ 0x9e3779b97f4a7c15);
        let mut history = Vec::with_capacity(opts.rounds);
        let mut evaluated = pool.len();

        for round in 0..opts.rounds {
            let top = pool.top_k(opts.top_k);
            // Phase 1, serial: propose one revision per valuable candidate.
            // The Q-network state and the RNG stream advance in a fixed
            // order here, so the round's proposals are independent of the
            // worker count.
            let mut proposals: Vec<(Candidate, Schedule, usize)> = Vec::with_capacity(top.len());
            for idx in top {
                let cand = pool.candidates()[idx].clone();
                let proposal = if opts.use_qlearning {
                    qlearner.propose(&cand.schedule, &ctx)
                } else {
                    // Random-revision ablation.
                    let a = rng.gen_range(0..NUM_REVISIONS);
                    Revision::from_action(a)
                        .apply(&cand.schedule, &ctx, &mut rng)
                        .map(|s| (s, a))
                };
                let Some((revised, action)) = proposal else {
                    continue;
                };
                proposals.push((cand, revised, action));
            }
            evaluated += proposals.len();

            // Phase 2, parallel: lower and cost the proposed schedules
            // (pure functions of the schedule). Tiny batches run inline —
            // per-batch thread spawns would cost more than sub-millisecond
            // lowering itself; either strategy yields identical results.
            let evaluate_one = |_: usize, (_, revised, _): &(Candidate, Schedule, usize)| {
                lowering::evaluate(revised, &ctx, cfg, self.backend.as_ref())
            };
            let outcomes = if proposals.len() < 4 {
                proposals
                    .iter()
                    .enumerate()
                    .map(|(i, p)| evaluate_one(i, p))
                    .collect()
            } else {
                self.workers.map(&proposals, evaluate_one)
            };

            // Phase 3, serial: feed rewards back in submission order.
            let outcomes_len = proposals.len();
            let mut fresh: Vec<Candidate> = Vec::new();
            for ((cand, revised, action), outcome) in proposals.into_iter().zip(outcomes) {
                match outcome {
                    Ok(metrics) => {
                        let reward =
                            QLearner::reward(cand.metrics.latency_cycles, metrics.latency_cycles);
                        if opts.use_qlearning {
                            qlearner.observe(
                                cand.schedule.features(&ctx),
                                action,
                                reward,
                                revised.features(&ctx),
                            );
                        }
                        fresh.push(Candidate {
                            schedule: revised,
                            metrics,
                        });
                    }
                    Err(_) => {
                        if opts.use_qlearning {
                            // Invalid revisions (scratchpad overflow) get a
                            // strong negative reward.
                            qlearner.observe(
                                cand.schedule.features(&ctx),
                                action,
                                -1.0,
                                cand.schedule.features(&ctx),
                            );
                        }
                    }
                }
            }
            let feasible = fresh.len();
            let submitted = outcomes_len;
            for c in fresh {
                pool.insert(c);
            }
            pool.prune(opts.max_pool);
            history.push(pool.best_latency());
            if let Some(progress) = &self.progress {
                let keep_going = progress.on_batch(&BatchUpdate {
                    optimizer: "sw-explorer",
                    phase: "round",
                    batch: round + 1,
                    evaluated: submitted,
                    feasible,
                });
                if !keep_going {
                    break;
                }
            }
        }

        let best = pool.best().clone();
        Ok(OptimizedSoftware {
            schedule: best.schedule,
            metrics: best.metrics,
            history,
            evaluated,
        })
    }

    /// Optimizes and returns only the best metrics (the hardware DSE's
    /// objective evaluation: "the Bayesian-based hardware optimization uses
    /// the software latency as the performance metric").
    ///
    /// # Errors
    /// Propagates [`SwError`] from [`SoftwareExplorer::optimize`].
    pub fn best_metrics(
        &self,
        workload: &Workload,
        cfg: &AcceleratorConfig,
        opts: &ExplorerOptions,
    ) -> Result<Metrics, SwError> {
        Ok(self.optimize(workload, cfg, opts)?.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::intrinsics::IntrinsicKind;
    use tensor_ir::suites;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap()
    }

    fn quick_opts() -> ExplorerOptions {
        ExplorerOptions {
            pool: 10,
            rounds: 10,
            top_k: 3,
            ..ExplorerOptions::default()
        }
    }

    #[test]
    fn optimization_improves_over_pool_init() {
        let wl = suites::gemm_workload("g", 512, 512, 512);
        let r = SoftwareExplorer::new(7)
            .optimize(&wl, &cfg(), &quick_opts())
            .unwrap();
        assert!(!r.history.is_empty());
        let first = r.history[0];
        let last = *r.history.last().unwrap();
        assert!(last <= first);
        assert_eq!(r.metrics.latency_cycles, last);
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let wl = suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3);
        let r = SoftwareExplorer::new(3)
            .optimize(&wl, &cfg(), &quick_opts())
            .unwrap();
        assert!(r.history.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    }

    #[test]
    fn deterministic_per_seed() {
        let wl = suites::gemm_workload("g", 256, 256, 256);
        let a = SoftwareExplorer::new(11)
            .optimize(&wl, &cfg(), &quick_opts())
            .unwrap();
        let b = SoftwareExplorer::new(11)
            .optimize(&wl, &cfg(), &quick_opts())
            .unwrap();
        assert_eq!(a.metrics.latency_cycles, b.metrics.latency_cycles);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn parallel_workers_do_not_change_results() {
        let wl = suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3);
        for use_qlearning in [true, false] {
            let mut opts = quick_opts();
            opts.use_qlearning = use_qlearning;
            let serial = SoftwareExplorer::new(13)
                .optimize(&wl, &cfg(), &opts)
                .unwrap();
            let parallel = SoftwareExplorer::new(13)
                .with_workers(runtime::WorkerPool::new(4))
                .optimize(&wl, &cfg(), &opts)
                .unwrap();
            assert_eq!(
                serial.history, parallel.history,
                "qlearning={use_qlearning}"
            );
            assert_eq!(
                serial.metrics.latency_cycles,
                parallel.metrics.latency_cycles
            );
            assert_eq!(serial.evaluated, parallel.evaluated);
            assert_eq!(
                serial.schedule.choice.var_map,
                parallel.schedule.choice.var_map
            );
        }
    }

    #[test]
    fn backend_changes_pricing_not_validity() {
        let wl = suites::gemm_workload("g", 256, 256, 256);
        let c = cfg();
        let mut latencies = Vec::new();
        for kind in accel_model::BackendKind::ALL {
            let r = SoftwareExplorer::new(21)
                .with_backend(kind.build())
                .optimize(&wl, &c, &quick_opts())
                .unwrap();
            assert!(r.metrics.latency_cycles > 0.0, "{kind}");
            latencies.push(r.metrics.latency_cycles);
        }
        // Same hardware, same order of magnitude across tiers.
        let (lo, hi) = latencies
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &l| {
                (lo.min(l), hi.max(l))
            });
        assert!(hi / lo < 4.0, "tiers disagree wildly: {latencies:?}");
    }

    #[test]
    fn backend_fingerprints_distinguish_tiers_and_key_identically() {
        let a = SoftwareExplorer::new(0);
        let b = SoftwareExplorer::new(0).with_backend(accel_model::BackendKind::TraceSim.build());
        assert_ne!(a.backend_fingerprint(), b.backend_fingerprint());
        let a2 = SoftwareExplorer::new(7);
        assert_eq!(a.backend_fingerprint(), a2.backend_fingerprint());
    }

    #[test]
    fn sim_backend_results_are_thread_count_independent() {
        let wl = suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3);
        let c = cfg();
        let serial = SoftwareExplorer::new(17)
            .with_backend(accel_model::BackendKind::TraceSim.build())
            .optimize(&wl, &c, &quick_opts())
            .unwrap();
        let parallel = SoftwareExplorer::new(17)
            .with_backend(accel_model::BackendKind::TraceSim.build())
            .with_workers(runtime::WorkerPool::new(4))
            .optimize(&wl, &c, &quick_opts())
            .unwrap();
        assert_eq!(serial.history, parallel.history);
        assert_eq!(
            serial.metrics.latency_cycles,
            parallel.metrics.latency_cycles
        );
    }

    #[test]
    fn surrogate_generations_move_the_explorer_fingerprint() {
        // The hardware DSE keys its memo cache by this fingerprint; a
        // surrogate retraining between batches must invalidate it, or
        // stale-generation prices would be served as fresh ones.
        let explorer =
            SoftwareExplorer::new(0).with_backend(accel_model::BackendKind::Surrogate.build());
        let before = explorer.backend_fingerprint();
        let surrogate = explorer.backend().as_surrogate().expect("surrogate tier");
        assert!(surrogate.observe(&cfg()) > 0);
        assert_ne!(before, explorer.backend_fingerprint());
    }

    #[test]
    fn trained_surrogate_explorations_stay_deterministic() {
        // Train one surrogate, then explore twice (serial and parallel):
        // a frozen generation must price identically everywhere.
        let wl = suites::gemm_workload("g", 256, 256, 256);
        let c = cfg();
        let backend = accel_model::BackendKind::Surrogate.build();
        for (rows, kb) in [(8u32, 128u64), (16, 256), (32, 512), (8, 512), (32, 128)] {
            let probe = AcceleratorConfig::builder(tensor_ir::intrinsics::IntrinsicKind::Gemm)
                .pe_array(rows, rows)
                .scratchpad_kb(kb)
                .build()
                .unwrap();
            backend.as_surrogate().unwrap().observe(&probe);
        }
        assert!(backend.as_surrogate().unwrap().is_trusted());
        let serial = SoftwareExplorer::new(19)
            .with_backend(backend.clone())
            .optimize(&wl, &c, &quick_opts())
            .unwrap();
        let parallel = SoftwareExplorer::new(19)
            .with_backend(backend)
            .with_workers(runtime::WorkerPool::new(4))
            .optimize(&wl, &c, &quick_opts())
            .unwrap();
        assert_eq!(serial.history, parallel.history);
        assert_eq!(
            serial.metrics.latency_cycles,
            parallel.metrics.latency_cycles
        );
    }

    #[test]
    fn explorer_options_fingerprints_distinguish_knobs() {
        use runtime::StableFingerprint;
        let base = quick_opts();
        let mut other = quick_opts();
        assert_eq!(base.fingerprint(), other.fingerprint());
        other.rounds += 1;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut ql = quick_opts();
        ql.use_qlearning = false;
        assert_ne!(base.fingerprint(), ql.fingerprint());
    }

    #[test]
    fn fixed_choice_is_respected() {
        let wl = suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3);
        let c = cfg();
        let ctx = ScheduleContext::new(&wl, &c.intrinsic_comp()).unwrap();
        let choice = ctx.choices[0].clone();
        let mut opts = quick_opts();
        opts.fixed_choice = Some(choice.clone());
        let r = SoftwareExplorer::new(5).optimize(&wl, &c, &opts).unwrap();
        assert_eq!(r.schedule.choice.var_map, choice.var_map);
    }

    #[test]
    fn qlearning_does_not_hurt_vs_random_revision() {
        // Ablation shape check: across seeds, Q-learning should be at least
        // as good as random revision on average.
        let wl = suites::gemm_workload("g", 512, 512, 512);
        let c = cfg();
        let mut q_total = 0.0;
        let mut r_total = 0.0;
        for seed in 0..4 {
            let mut opts = quick_opts();
            opts.rounds = 12;
            let q = SoftwareExplorer::new(seed)
                .optimize(&wl, &c, &opts)
                .unwrap();
            opts.use_qlearning = false;
            let r = SoftwareExplorer::new(seed)
                .optimize(&wl, &c, &opts)
                .unwrap();
            q_total += q.metrics.latency_cycles;
            r_total += r.metrics.latency_cycles;
        }
        assert!(
            q_total <= r_total * 1.15,
            "q = {q_total}, random = {r_total}"
        );
    }

    #[test]
    fn impossible_accelerator_errors() {
        let wl = suites::gemm_workload("g", 256, 256, 256);
        let mut c = cfg();
        c.scratchpad_bytes = 64;
        assert!(SoftwareExplorer::new(0)
            .optimize(&wl, &c, &quick_opts())
            .is_err());
    }

    #[test]
    fn best_metrics_matches_optimize() {
        let wl = suites::gemm_workload("g", 128, 128, 128);
        let e = SoftwareExplorer::new(2);
        let m = e.best_metrics(&wl, &cfg(), &quick_opts()).unwrap();
        let o = e.optimize(&wl, &cfg(), &quick_opts()).unwrap();
        assert_eq!(m.latency_cycles, o.metrics.latency_cycles);
    }
}
