//! Lowering schedules to [`ExecutionPlan`]s — the cost connection between
//! software optimization and the accelerator model.
//!
//! The DRAM traffic follows the classic tile-reuse rule: a tensor's tile is
//! re-fetched on every iteration of the outer loops from the outermost down
//! to the innermost loop that indexes the tensor; loops nested inside that
//! point reuse the buffered tile. This is what makes loop *order* matter
//! (programs p1 vs. p2 of the paper's Fig. 2) and tensorize-choice
//! continuity matter (choices a vs. b of Fig. 7(c)).

use accel_model::arch::AcceleratorConfig;
use accel_model::plan::{ExecutionPlan, TensorTraffic};
use tensor_ir::expr::{Access, AffineDim};
use tensor_ir::IndexId;

use crate::schedule::{Schedule, ScheduleContext};
use crate::SwError;

/// Detailed quantities computed during lowering (exposed for tests,
/// reports, and the interface generator).
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredSchedule {
    /// The priced plan.
    pub plan: ExecutionPlan,
    /// Interface invocations (product of outer trips).
    pub invocations: u64,
    /// Intrinsic calls per invocation.
    pub calls_per_invocation: u64,
    /// Scratchpad bytes needed by one invocation's sub-tensors.
    pub tile_footprint_bytes: u64,
    /// Per-tensor sub-tile bytes, inputs then output.
    pub subtensor_bytes: Vec<(String, u64)>,
}

/// Sub-tensor extent of one access dimension inside a single invocation,
/// applying the halo rule to affine subscripts (`x + r` with tile `Tx` and
/// inner `r` extent `Tr` spans `Tx + Tr − 1`).
fn inner_dim_extent(sched: &Schedule, dim_terms: &[IndexId]) -> u64 {
    let sum: u64 = dim_terms.iter().map(|t| sched.inner_extent(*t)).sum();
    sum + 1 - dim_terms.len() as u64
}

fn subtensor_shape(sched: &Schedule, access: &Access) -> Vec<u64> {
    access
        .dims
        .iter()
        .map(|d| inner_dim_extent(sched, &d.terms))
        .collect()
}

fn subtensor_bytes(sched: &Schedule, access: &Access, dtype: u64) -> u64 {
    subtensor_shape(sched, access).iter().product::<u64>() * dtype
}

/// Average contiguous DRAM run of a sub-tensor slice.
///
/// Tensors accessed through simple (single-variable) subscripts get a
/// compiler-chosen tile-packed DRAM layout — each tile is stored
/// contiguously, as TVM-style layout transforms do — so the run equals the
/// tile size. Tensors with affine-window subscripts (`x + r`) have
/// overlapping tiles that cannot all be packed; they fall back to the
/// row-major trailing-run analysis.
fn contiguous_run(sched: &Schedule, ctx: &ScheduleContext, access: &Access, dtype: u64) -> u64 {
    if access.dims.iter().all(AffineDim::is_simple) {
        return subtensor_bytes(sched, access, dtype).max(dtype);
    }
    let full = ctx.workload.comp.tensor_shape(access);
    let inner = subtensor_shape(sched, access);
    let mut run = 1u64;
    for (i, (&f, &t)) in full.iter().zip(inner.iter()).enumerate().rev() {
        run = run.saturating_mul(t);
        let innermost = i == full.len() - 1;
        if t < f || (!innermost && t != f) {
            break;
        }
    }
    run.saturating_mul(dtype).max(dtype)
}

/// Innermost outer-loop position that the access depends on, or `None` when
/// the access uses no loops (scalar).
fn reuse_level(sched: &Schedule, access: &Access) -> Option<usize> {
    sched
        .outer_order
        .iter()
        .enumerate()
        .filter(|(_, &idx)| access.uses(idx))
        .map(|(pos, _)| pos)
        .max()
}

/// DRAM fetch multiplicity of an access: the product of outer trip counts
/// down to (and including) its reuse level.
///
/// Loops that only shift an affine window (e.g. `r` in `A[c, x+r, y+s]`
/// when `x` is tensorized with a large tile) are discounted when they sit
/// at the access's reuse level: consecutive window positions overlap in all
/// but one element per step, and a line-buffered scratchpad fetches only
/// the new fringe. This is what makes direct convolution partitioning
/// competitive with (and for odd filters better than) a dedicated CONV2D
/// intrinsic, as in the paper's Fig. 7(b).
fn fetch_multiplicity(sched: &Schedule, ctx: &ScheduleContext, access: &Access) -> u64 {
    let Some(level) = reuse_level(sched, access) else {
        return 1;
    };
    // Window-partner tile per loop: if `idx` shares an affine dim with
    // tensorized partners, shifting `idx` by one adds only `1/partner` new
    // data along that dim (line buffering).
    let partner_of = |idx: IndexId| -> Option<u64> {
        for dim in &access.dims {
            if dim.terms.len() > 1 && dim.terms.contains(&idx) {
                let partner: u64 = dim
                    .terms
                    .iter()
                    .filter(|&&t| t != idx)
                    .map(|&t| sched.inner_extent(t))
                    .sum();
                if partner > 1 {
                    return Some(partner);
                }
            }
        }
        None
    };
    // Walk relevant loops from the reuse level upward; consecutive trailing
    // window loops are halo-discounted, anything above a non-window loop
    // pays full trips.
    let mut mult = 1.0f64;
    let mut discounting = true;
    for &idx in sched.outer_order[..=level].iter().rev() {
        let trips = sched.trip_count(ctx, idx) as f64;
        if !access.uses(idx) {
            // An irrelevant loop inside the prefix re-sweeps the deeper
            // relevant loops (full refetch per iteration) and breaks the
            // line-buffer continuity of any window loop above it.
            if trips > 1.0 {
                discounting = false;
            }
            mult *= trips;
            continue;
        }
        match partner_of(idx) {
            Some(partner) if discounting => {
                mult *= 1.0 + (trips - 1.0) / partner as f64;
            }
            _ => {
                discounting = false;
                mult *= trips;
            }
        }
    }
    mult.ceil() as u64
}

/// Lowers a schedule to an execution plan.
///
/// # Errors
/// Returns [`SwError::ScratchpadOverflow`] when the sub-tensors do not fit
/// the accelerator's scratchpad, or a validation error for malformed
/// schedules.
pub fn lower(
    sched: &Schedule,
    ctx: &ScheduleContext,
    cfg: &AcceleratorConfig,
) -> Result<LoweredSchedule, SwError> {
    sched.validate(ctx)?;
    let comp = &ctx.workload.comp;
    let dtype = cfg.dtype_bytes;

    // --- scratchpad capacity -------------------------------------------
    let mut sub_bytes: Vec<(String, u64)> = Vec::new();
    let mut tile_footprint = 0u64;
    for acc in comp.inputs.iter().chain(std::iter::once(&comp.output)) {
        let b = subtensor_bytes(sched, acc, dtype);
        tile_footprint += b;
        sub_bytes.push((acc.tensor.clone(), b));
    }
    if tile_footprint > cfg.scratchpad_bytes {
        return Err(SwError::ScratchpadOverflow {
            required: tile_footprint,
            available: cfg.scratchpad_bytes,
        });
    }
    let double_buffered = 2 * tile_footprint <= cfg.scratchpad_bytes;

    // --- intrinsic chunking and padding --------------------------------
    // Iterate per distinct tensorized compute variable (the var map is a
    // var-level bijection, but intrinsic leaves may repeat a variable).
    // Spatially mapped dims (PE lanes, hard-wired filter windows) pad
    // rigidly to the intrinsic extent — the Fig. 7(b) redundant-computation
    // effect for 5x5/7x7 filters on a 3x3 CONV2D intrinsic. Deep reduction
    // streams (GEMM's k, GEMV's j, DOT) can stop early and pad nothing.
    let mut calls_per_invocation = 1u64;
    let mut padded_per_invocation = 1u64;
    for idx in sched.choice.tensorized_indices() {
        let ext_q = ctx.intrinsic_extent(&sched.choice, idx);
        let tile = sched.inner_extent(idx);
        let chunks = tile.div_ceil(ext_q);
        let streamable = ctx.workload.comp.index(idx).is_reduction() && ext_q >= 16;
        let padded = if streamable { tile } else { chunks * ext_q };
        calls_per_invocation = calls_per_invocation.saturating_mul(chunks);
        padded_per_invocation = padded_per_invocation.saturating_mul(padded);
    }

    let invocations = sched.invocations(ctx);
    let macs_useful = comp.iteration_points();
    let macs_padded = invocations
        .saturating_mul(padded_per_invocation)
        .max(macs_useful);
    let intrinsic_calls = invocations.saturating_mul(calls_per_invocation);

    // --- DRAM traffic ----------------------------------------------------
    let mut dram_reads = Vec::new();
    let mut dram_writes = Vec::new();
    let mut rearrange_bytes = 0u64;
    for acc in &comp.inputs {
        let bytes =
            subtensor_bytes(sched, acc, dtype).saturating_mul(fetch_multiplicity(sched, ctx, acc));
        let run = contiguous_run(sched, ctx, acc, dtype);
        if sched.choice.needs_rearrangement && acc.dims.iter().any(|d| !d.is_simple()) {
            rearrange_bytes = rearrange_bytes.saturating_add(bytes);
        }
        dram_reads.push(TensorTraffic::new(acc.tensor.clone(), bytes, run));
    }
    {
        let out = &comp.output;
        let writes =
            subtensor_bytes(sched, out, dtype).saturating_mul(fetch_multiplicity(sched, ctx, out));
        let run = contiguous_run(sched, ctx, out, dtype);
        dram_writes.push(TensorTraffic::new(out.tensor.clone(), writes, run));
        // Read-modify-write when a reduction loop sits at or outside the
        // output's reuse level: partial sums must be reloaded.
        if let Some(level) = reuse_level(sched, out) {
            let rmw = sched.outer_order[..=level]
                .iter()
                .any(|&idx| comp.index(idx).is_reduction());
            if rmw {
                dram_reads.push(TensorTraffic::new(
                    format!("{}(acc)", out.tensor),
                    writes,
                    run,
                ));
            }
        }
    }

    // --- scratchpad traffic ---------------------------------------------
    // Each operand streams to the PEs once per chunk of every intrinsic
    // dimension it does *not* use; the output tile is revisited once per
    // reduction chunk.
    let mut spad_per_invocation = 0u64;
    for acc in &comp.inputs {
        let mut restream = 1u64;
        for idx in sched.choice.tensorized_indices() {
            if !acc.uses(idx) {
                let ext_q = ctx.intrinsic_extent(&sched.choice, idx);
                restream = restream.saturating_mul(sched.inner_extent(idx).div_ceil(ext_q));
            }
        }
        spad_per_invocation = spad_per_invocation
            .saturating_add(subtensor_bytes(sched, acc, dtype).saturating_mul(restream));
    }
    {
        let mut red_chunks = 1u64;
        for idx in sched.choice.tensorized_indices() {
            if comp.index(idx).is_reduction() {
                let ext_q = ctx.intrinsic_extent(&sched.choice, idx);
                red_chunks = red_chunks.saturating_mul(sched.inner_extent(idx).div_ceil(ext_q));
            }
        }
        spad_per_invocation = spad_per_invocation
            .saturating_add(subtensor_bytes(sched, &comp.output, dtype).saturating_mul(red_chunks));
    }
    let spad_traffic_bytes = spad_per_invocation.saturating_mul(invocations);

    // --- host loop control -------------------------------------------
    // Each level of the outer loop nest costs ~2 host cycles of control
    // per iteration of everything above it; fusing the `fuse_outer`
    // outermost loops collapses them into a single launch loop (§VI-A's
    // `fuse` primitive).
    let mut host_control_cycles = 0u64;
    let mut running = 1u64;
    let effective_levels: Vec<u64> = {
        let mut levels: Vec<u64> = Vec::new();
        let mut fused_trip = 1u64;
        for (pos, &idx) in sched.outer_order.iter().enumerate() {
            let t = sched.trip_count(ctx, idx);
            if pos + 1 < sched.fuse_outer.max(1) && pos + 1 < sched.outer_order.len() {
                // Part of the fused outermost loop: accumulate, emit once.
                fused_trip = fused_trip.saturating_mul(t);
            } else {
                levels.push(fused_trip.saturating_mul(t));
                fused_trip = 1;
            }
        }
        levels
    };
    for t in effective_levels {
        running = running.saturating_mul(t);
        host_control_cycles = host_control_cycles.saturating_add(running.saturating_mul(2));
    }

    let plan = ExecutionPlan {
        intrinsic_calls,
        macs_useful,
        macs_padded,
        dram_reads,
        dram_writes,
        spad_traffic_bytes,
        rearrange_bytes,
        stages: invocations.max(1),
        double_buffered,
        host_control_cycles,
    };
    Ok(LoweredSchedule {
        plan,
        invocations,
        calls_per_invocation,
        tile_footprint_bytes: tile_footprint,
        subtensor_bytes: sub_bytes,
    })
}

/// Convenience: lower and price in one step, through any cost backend
/// (analytic, trace-sim, or calibrated — see [`accel_model::backend`]).
///
/// # Errors
/// Propagates lowering errors.
pub fn evaluate(
    sched: &Schedule,
    ctx: &ScheduleContext,
    cfg: &AcceleratorConfig,
    backend: &dyn accel_model::CostBackend,
) -> Result<accel_model::Metrics, SwError> {
    let lowered = lower(sched, ctx, cfg)?;
    Ok(backend.evaluate(cfg, &lowered.plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_model::CostModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;
    use tensor_ir::intrinsics::IntrinsicKind;
    use tensor_ir::suites;

    fn gemm_ctx(n: u64) -> (ScheduleContext, AcceleratorConfig) {
        let wl = suites::gemm_workload("g", n, n, n);
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        let intr = cfg.intrinsic_comp();
        (ScheduleContext::new(&wl, &intr).unwrap(), cfg)
    }

    /// A canonical GEMM schedule: tensorize (i, j, k) with the given tiles,
    /// outer order as given by names.
    fn gemm_schedule(ctx: &ScheduleContext, ti: u64, tk: u64, tj: u64, order: &[&str]) -> Schedule {
        // Find the choice that binds all three loops (i, j spatial, k red).
        let choice = ctx
            .choices
            .iter()
            .find(|c| c.tensorized_indices().len() == 3 && !c.needs_rearrangement)
            .expect("full gemm choice exists")
            .clone();
        let comp = &ctx.workload.comp;
        let mut tiles = BTreeMap::new();
        tiles.insert(comp.index_by_name("i").unwrap(), ti);
        tiles.insert(comp.index_by_name("k").unwrap(), tk);
        tiles.insert(comp.index_by_name("j").unwrap(), tj);
        let outer_order = order
            .iter()
            .map(|n| comp.index_by_name(n).unwrap())
            .collect();
        Schedule {
            choice,
            tiles,
            outer_order,
            fuse_outer: 0,
        }
    }

    #[test]
    fn exact_tiling_has_no_padding() {
        let (ctx, cfg) = gemm_ctx(256);
        let s = gemm_schedule(&ctx, 64, 64, 64, &["i", "j", "k"]);
        let l = lower(&s, &ctx, &cfg).unwrap();
        assert_eq!(l.plan.macs_useful, 256u64.pow(3));
        assert_eq!(l.plan.macs_padded, l.plan.macs_useful);
        assert_eq!(l.invocations, 4 * 4 * 4);
        // Tile 64^3 on the 16x64x16 intrinsic (k streamed 64-deep):
        // 4 i-chunks x 1 k-chunk x 4 j-chunks.
        assert_eq!(l.calls_per_invocation, 16);
    }

    #[test]
    fn non_dividing_tile_pads() {
        let (ctx, cfg) = gemm_ctx(100);
        let s = gemm_schedule(&ctx, 48, 48, 48, &["i", "j", "k"]);
        let l = lower(&s, &ctx, &cfg).unwrap();
        assert!(l.plan.macs_padded > l.plan.macs_useful);
        assert!(l.plan.utilization() < 1.0);
    }

    #[test]
    fn loop_order_changes_dram_traffic() {
        // The Fig. 2 p1-vs-p2 effect: same tiles, different order, different
        // memory traffic.
        let (ctx, cfg) = gemm_ctx(512);
        let a = gemm_schedule(&ctx, 64, 64, 64, &["i", "j", "k"]);
        let b = gemm_schedule(&ctx, 64, 64, 64, &["k", "j", "i"]);
        let la = lower(&a, &ctx, &cfg).unwrap();
        let lb = lower(&b, &ctx, &cfg).unwrap();
        assert_ne!(la.plan.dram_bytes(), lb.plan.dram_bytes());
    }

    #[test]
    fn innermost_irrelevant_loop_enables_reuse() {
        // Order (k, j, i): M[i,k] doesn't use j... rather: with i innermost,
        // N[k,j] (not using i) is fetched fewer times than with order
        // (i, k, j) where j is innermost for it.
        let (ctx, _cfg) = gemm_ctx(512);
        let comp = &ctx.workload.comp;
        let n_acc = comp.inputs.iter().find(|a| a.tensor == "N").unwrap();
        let s1 = gemm_schedule(&ctx, 64, 64, 64, &["k", "j", "i"]);
        let s2 = gemm_schedule(&ctx, 64, 64, 64, &["i", "k", "j"]);
        let m1 = fetch_multiplicity(&s1, &ctx, n_acc);
        let m2 = fetch_multiplicity(&s2, &ctx, n_acc);
        // s1: N's innermost relevant loop is j at position 1 -> 8*8 = 64.
        // s2: j innermost at position 2 -> 8*8*8 = 512.
        assert_eq!(m1, 64);
        assert_eq!(m2, 512);
    }

    #[test]
    fn bigger_tiles_cut_traffic() {
        let (ctx, cfg) = gemm_ctx(512);
        let small = gemm_schedule(&ctx, 16, 16, 16, &["i", "j", "k"]);
        let big = gemm_schedule(&ctx, 64, 64, 64, &["i", "j", "k"]);
        let ls = lower(&small, &ctx, &cfg).unwrap();
        let lb = lower(&big, &ctx, &cfg).unwrap();
        assert!(lb.plan.dram_bytes() < ls.plan.dram_bytes());
    }

    #[test]
    fn scratchpad_overflow_is_detected() {
        let (ctx, mut cfg) = gemm_ctx(512);
        cfg.scratchpad_bytes = 4 * 1024;
        let s = gemm_schedule(&ctx, 256, 256, 256, &["i", "j", "k"]);
        assert!(matches!(
            lower(&s, &ctx, &cfg),
            Err(SwError::ScratchpadOverflow { .. })
        ));
    }

    #[test]
    fn double_buffering_requires_half_spad() {
        let (ctx, mut cfg) = gemm_ctx(256);
        let s = gemm_schedule(&ctx, 64, 64, 64, &["i", "j", "k"]);
        // Footprint: (64*64)*3 tensors * 2B = 24576 B.
        let l = lower(&s, &ctx, &cfg).unwrap();
        assert_eq!(l.tile_footprint_bytes, 3 * 64 * 64 * 2);
        assert!(l.plan.double_buffered);
        cfg.scratchpad_bytes = l.tile_footprint_bytes + 100; // < 2x
        let l2 = lower(&s, &ctx, &cfg).unwrap();
        assert!(!l2.plan.double_buffered);
    }

    #[test]
    fn reduction_outside_output_level_forces_rmw() {
        let (ctx, cfg) = gemm_ctx(256);
        // Order (i, j, k): k innermost, deeper than L's reuse level — the
        // output tile accumulates in the scratchpad and is written once.
        let inner_k = gemm_schedule(&ctx, 64, 64, 64, &["i", "j", "k"]);
        let l1 = lower(&inner_k, &ctx, &cfg).unwrap();
        assert!(!l1.plan.dram_reads.iter().any(|t| t.tensor == "L(acc)"));
        // Order (k, i, j): k outermost — every output tile is revisited
        // trips(k) times, forcing read-modify-write traffic.
        let outer_k = gemm_schedule(&ctx, 64, 64, 64, &["k", "i", "j"]);
        let l2 = lower(&outer_k, &ctx, &cfg).unwrap();
        assert!(l2.plan.dram_reads.iter().any(|t| t.tensor == "L(acc)"));
        assert!(l2.plan.dram_writes[0].bytes > l1.plan.dram_writes[0].bytes);
    }

    #[test]
    fn full_reduction_tile_single_pass_writes_output_once() {
        let (ctx, cfg) = gemm_ctx(256);
        // Tensorize k fully (tile 256): every invocation computes a final
        // output tile; order (i, j, k) with trip(k) = 1.
        let s = gemm_schedule(&ctx, 64, 256, 64, &["i", "j", "k"]);
        let l = lower(&s, &ctx, &cfg).unwrap();
        // L written exactly once: 256*256 elements * 2 B.
        assert_eq!(l.plan.dram_writes[0].bytes, 256 * 256 * 2);
    }

    #[test]
    fn simple_subscript_tensors_are_tile_packed() {
        let (ctx, _cfg) = gemm_ctx(256);
        // N[k, j] has simple subscripts: the compiler packs tiles, so the
        // run equals the tile size regardless of the tile shape.
        let comp = &ctx.workload.comp;
        let n_acc = comp.inputs.iter().find(|a| a.tensor == "N").unwrap();
        let s_full = gemm_schedule(&ctx, 64, 64, 256, &["i", "j", "k"]);
        assert_eq!(contiguous_run(&s_full, &ctx, n_acc, 2), 64 * 256 * 2);
        let s_part = gemm_schedule(&ctx, 64, 64, 64, &["i", "j", "k"]);
        assert_eq!(contiguous_run(&s_part, &ctx, n_acc, 2), 64 * 64 * 2);
    }

    #[test]
    fn affine_tensors_use_trailing_run_analysis() {
        // Conv's A[c, x+r, y+s] cannot be tile-packed: overlapping windows.
        let wl = suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3);
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let s = ctx.random_schedule(&mut rng);
        let a_acc = ctx
            .workload
            .comp
            .inputs
            .iter()
            .find(|a| a.tensor == "A")
            .unwrap();
        let run = contiguous_run(&s, &ctx, a_acc, 2);
        let tile_bytes = subtensor_bytes(&s, a_acc, 2);
        assert!(
            run <= tile_bytes,
            "affine run {run} must not exceed tile {tile_bytes}"
        );
    }

    #[test]
    fn halo_discount_rewards_window_inner_orders() {
        // With r, s innermost, A's window loops are line-buffered; with
        // them outermost the tensor is refetched per filter tap.
        let wl = suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3);
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
        let comp = &ctx.workload.comp;
        let id = |n: &str| comp.index_by_name(n).unwrap();
        let choice = ctx
            .choices
            .iter()
            .find(|c| {
                let v = c.tensorized_indices();
                v.contains(&id("c")) && v.contains(&id("x")) && !c.needs_rearrangement
            })
            .unwrap()
            .clone();
        let mut tiles = std::collections::BTreeMap::new();
        tiles.insert(id("k"), 64);
        tiles.insert(id("c"), 64);
        tiles.insert(id("x"), 28);
        let a_acc = comp.inputs.iter().find(|a| a.tensor == "A").unwrap();
        let mk = |order: &[&str]| Schedule {
            choice: choice.clone(),
            tiles: tiles.clone(),
            outer_order: order.iter().map(|n| id(n)).collect(),
            fuse_outer: 0,
        };
        // `r` windows against the tensorized `x` (tile 28): putting `r`
        // innermost line-buffers it; putting it outermost refetches A per
        // filter tap.
        let window_inner = mk(&["k", "y", "s", "c", "x", "r"]);
        let window_outer = mk(&["r", "s", "k", "y", "c", "x"]);
        let mi = fetch_multiplicity(&window_inner, &ctx, a_acc);
        let mo = fetch_multiplicity(&window_outer, &ctx, a_acc);
        assert!(mi < mo, "window-inner {mi} should beat window-outer {mo}");
    }

    #[test]
    fn rearranged_choice_charges_rearrange_bytes() {
        let wl = suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3);
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
        let rearranged = ctx.choices.iter().find(|c| c.needs_rearrangement);
        if let Some(choice) = rearranged {
            let mut rng = SmallRng::seed_from_u64(3);
            for _ in 0..20 {
                let s = ctx.random_schedule_for(choice, &mut rng);
                if let Ok(l) = lower(&s, &ctx, &cfg) {
                    assert!(l.plan.rearrange_bytes > 0);
                    return;
                }
            }
            panic!("no valid schedule found for rearranged choice");
        }
    }

    #[test]
    fn strict_choice_has_no_rearrange_bytes() {
        let (ctx, cfg) = gemm_ctx(256);
        let s = gemm_schedule(&ctx, 64, 64, 64, &["i", "j", "k"]);
        let l = lower(&s, &ctx, &cfg).unwrap();
        assert_eq!(l.plan.rearrange_bytes, 0);
    }

    #[test]
    fn evaluate_returns_metrics() {
        let (ctx, cfg) = gemm_ctx(256);
        let s = gemm_schedule(&ctx, 64, 64, 64, &["i", "j", "k"]);
        let m = evaluate(&s, &ctx, &cfg, &accel_model::AnalyticBackend::default()).unwrap();
        assert!(m.latency_cycles > 0.0 && m.power_mw > 0.0);
    }

    #[test]
    fn evaluate_dispatches_to_any_backend() {
        let (ctx, cfg) = gemm_ctx(256);
        let s = gemm_schedule(&ctx, 64, 64, 64, &["i", "j", "k"]);
        for kind in accel_model::BackendKind::ALL {
            let backend = kind.build();
            let m = evaluate(&s, &ctx, &cfg, backend.as_ref()).unwrap();
            assert!(m.latency_cycles > 0.0, "{kind}");
        }
    }

    #[test]
    fn spad_traffic_accounts_restreaming() {
        let (ctx, cfg) = gemm_ctx(256);
        // Larger j tile => M (which doesn't use j) restreams more chunks per
        // invocation, but fewer invocations; totals should stay comparable
        // while never being zero.
        let s = gemm_schedule(&ctx, 64, 64, 64, &["i", "j", "k"]);
        let l = lower(&s, &ctx, &cfg).unwrap();
        assert!(l.plan.spad_traffic_bytes > 0);
        // M tile is 64x64x2 B, restreamed ceil(64/16)=4 times per invocation
        // for j chunks; N likewise for i; L revisited ceil(64/64)=1 time
        // (the k stream is 64-deep).
        let m_bytes = 64 * 64 * 2 * 4;
        let n_bytes = 64 * 64 * 2 * 4;
        let l_bytes = 64 * 64 * 2;
        assert_eq!(
            l.plan.spad_traffic_bytes,
            (m_bytes + n_bytes + l_bytes) * l.invocations
        );
    }

    #[test]
    fn fusing_outer_loops_cuts_host_control() {
        let (ctx, cfg) = gemm_ctx(512);
        let mut unfused = gemm_schedule(&ctx, 64, 64, 64, &["i", "j", "k"]);
        unfused.fuse_outer = 0;
        let mut fused = unfused.clone();
        fused.fuse_outer = 3;
        let lu = lower(&unfused, &ctx, &cfg).unwrap();
        let lf = lower(&fused, &ctx, &cfg).unwrap();
        assert!(
            lf.plan.host_control_cycles < lu.plan.host_control_cycles,
            "fused {} vs unfused {}",
            lf.plan.host_control_cycles,
            lu.plan.host_control_cycles
        );
        // Fusion does not change the accelerator-side work.
        assert_eq!(lf.plan.macs_padded, lu.plan.macs_padded);
        assert_eq!(lf.plan.dram_bytes(), lu.plan.dram_bytes());
        // And the cost model rewards it.
        let model = CostModel::default();
        assert!(model.latency_cycles(&cfg, &lf.plan) <= model.latency_cycles(&cfg, &lu.plan));
    }

    #[test]
    fn conv_workload_lowers_end_to_end() {
        let wl = suites::conv2d_workload("c", 64, 64, 56, 56, 3, 3);
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut ok = 0;
        for _ in 0..30 {
            let s = ctx.random_schedule(&mut rng);
            if let Ok(l) = lower(&s, &ctx, &cfg) {
                assert!(l.plan.macs_padded >= l.plan.macs_useful);
                assert!(l.plan.dram_bytes() > 0);
                ok += 1;
            }
        }
        assert!(ok > 5, "only {ok}/30 random schedules were valid");
    }
}
