//! Software optimization and interface generation for HASCO (§VI).
//!
//! A [`schedule::Schedule`] fixes a tensorize choice, the tensorized tile
//! sizes, the outer loop order, and outer-loop fusion — exactly the factors
//! of the paper's software primitives (`split`, `reorder`, `fuse`,
//! `tensorize`). Schedules lower to [`accel_model::ExecutionPlan`]s through
//! a classic tile-reuse analysis ([`lowering`]) and to accelerator
//! instruction streams ([`interface`], §VI-C).
//!
//! The design space is explored the paper's way (§VI-B): a pool of random
//! candidate schedules is maintained; the heuristic step picks the top-k by
//! `value(p) = exp(-(l_p - l*)/l*)`; the Q-learning step (a from-scratch
//! 4-layer MLP DQN, [`qlearn`]) picks which revision to apply to each
//! valuable candidate.
//!
//! # Example
//!
//! ```
//! use accel_model::arch::AcceleratorConfig;
//! use tensor_ir::{suites, intrinsics::IntrinsicKind};
//! use sw_opt::explorer::{SoftwareExplorer, ExplorerOptions};
//!
//! let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm).build().unwrap();
//! let wl = suites::gemm_workload("g", 256, 256, 256);
//! let mut opts = ExplorerOptions::default();
//! opts.rounds = 4;
//! opts.pool = 8;
//! let best = SoftwareExplorer::new(1).optimize(&wl, &cfg, &opts).unwrap();
//! assert!(best.metrics.latency_cycles > 0.0);
//! ```

pub mod codegen;
pub mod explorer;
pub mod heuristic;
pub mod interface;
pub mod lowering;
pub mod nn;
pub mod primitives;
pub mod qlearn;
pub mod schedule;

pub use explorer::{ExplorerOptions, OptimizedSoftware, SoftwareExplorer};
pub use schedule::Schedule;

/// Errors produced while building or exploring schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwError {
    /// No tensorize choice matches the workload against the accelerator's
    /// intrinsic.
    NoTensorizeChoice {
        /// Workload name.
        workload: String,
        /// Intrinsic name.
        intrinsic: String,
    },
    /// The schedule's sub-tensors exceed the scratchpad capacity.
    ScratchpadOverflow {
        /// Required bytes.
        required: u64,
        /// Available bytes.
        available: u64,
    },
    /// The schedule references an index the workload does not have.
    BadIndex(usize),
    /// The outer loop order is not a permutation of the workload's loops.
    BadOrder,
    /// A tile size was zero or exceeded the loop extent.
    BadTile {
        /// The loop name.
        index: String,
        /// The offending tile.
        tile: u64,
    },
    /// No valid schedule could be generated within the sampling budget.
    NoValidSchedule,
}

impl std::fmt::Display for SwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwError::NoTensorizeChoice {
                workload,
                intrinsic,
            } => {
                write!(
                    f,
                    "no tensorize choice maps `{workload}` onto intrinsic `{intrinsic}`"
                )
            }
            SwError::ScratchpadOverflow {
                required,
                available,
            } => {
                write!(
                    f,
                    "schedule needs {required} B of scratchpad, only {available} B present"
                )
            }
            SwError::BadIndex(i) => write!(f, "schedule references unknown index {i}"),
            SwError::BadOrder => write!(f, "outer order is not a permutation of the loops"),
            SwError::BadTile { index, tile } => {
                write!(f, "tile {tile} is invalid for loop `{index}`")
            }
            SwError::NoValidSchedule => write!(f, "no valid schedule found within budget"),
        }
    }
}

impl std::error::Error for SwError {}
