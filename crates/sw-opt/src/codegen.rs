//! Pseudo-code generation: renders a schedule as the paper's Listing 1
//! style nested-loop program. HASCO's real flow hands the best schedule to
//! a code generation tool (TVM \[11\]); this reproduction emits the
//! equivalent readable program for inspection, examples, and docs.

use crate::schedule::{Schedule, ScheduleContext};

/// Renders the outer software program and the tensorized interface.
pub fn render(sched: &Schedule, ctx: &ScheduleContext) -> String {
    let comp = &ctx.workload.comp;
    let mut out = String::new();
    out.push_str(&format!("def {}_program(...):\n", ctx.workload.name));
    let mut indent = 1usize;
    let pad = |n: usize| "    ".repeat(n);
    for (pos, &idx) in sched.outer_order.iter().enumerate() {
        let v = comp.index(idx);
        let trip = sched.trip_count(ctx, idx);
        let tile = sched.inner_extent(idx);
        let fused = pos < sched.fuse_outer && sched.fuse_outer > 1;
        let marker = if fused { "  # fused" } else { "" };
        if tile > 1 {
            out.push_str(&format!(
                "{}for {}1 in range(0, {}, {}):{}\n",
                pad(indent),
                v.name,
                v.extent,
                tile,
                marker
            ));
        } else {
            out.push_str(&format!(
                "{}for {} in range(0, {}):{}\n",
                pad(indent),
                v.name,
                trip,
                marker
            ));
        }
        indent += 1;
    }
    out.push_str(&format!(
        "{}Tensorized_{}(...)\n\n",
        pad(indent),
        sched.choice.intrinsic
    ));

    // The interface body.
    out.push_str(&format!(
        "def Tensorized_{}(...):\n",
        sched.choice.intrinsic
    ));
    for acc in &comp.inputs {
        out.push_str(&format!(
            "    s{0} = load_tile({0})  # DRAM -> scratchpad\n",
            acc.tensor
        ));
    }
    let tensorized = sched.choice.tensorized_indices();
    for idx in &tensorized {
        let v = comp.index(*idx);
        let tile = sched.inner_extent(*idx);
        let step = ctx.intrinsic_extent(&sched.choice, *idx);
        out.push_str(&format!(
            "    for {}2 in range(0, {}, {}):\n",
            v.name, tile, step
        ));
    }
    out.push_str(&format!(
        "    {}{}_intrin(...)  # compute instruction\n",
        "    ".repeat(tensorized.len()),
        sched.choice.intrinsic
    ));
    out.push_str(&format!(
        "    store_tile({})  # scratchpad -> DRAM\n",
        comp.output.tensor
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_model::arch::AcceleratorConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tensor_ir::intrinsics::IntrinsicKind;
    use tensor_ir::suites;

    fn setup() -> (ScheduleContext, Schedule) {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        let wl = suites::conv2d_workload("conv", 64, 64, 56, 56, 3, 3);
        let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let sched = ctx.random_schedule(&mut rng);
        (ctx, sched)
    }

    #[test]
    fn render_contains_all_outer_loops() {
        let (ctx, sched) = setup();
        let code = render(&sched, &ctx);
        for idx in &sched.outer_order {
            let name = &ctx.workload.comp.index(*idx).name;
            assert!(
                code.contains(&format!("for {name}")),
                "missing loop {name}:\n{code}"
            );
        }
    }

    #[test]
    fn render_contains_interface_and_intrinsic() {
        let (ctx, sched) = setup();
        let code = render(&sched, &ctx);
        assert!(code.contains("Tensorized_gemm"));
        assert!(code.contains("gemm_intrin"));
        assert!(code.contains("load_tile(A)"));
        assert!(code.contains("load_tile(B)"));
        assert!(code.contains("store_tile(C)"));
    }

    #[test]
    fn fused_loops_are_marked() {
        let (ctx, mut sched) = setup();
        sched.fuse_outer = 3;
        let code = render(&sched, &ctx);
        assert!(code.contains("# fused"));
    }
}
