//! The Q-learning revision policy (§VI-B, Fig. 5(e)).
//!
//! "To revise candidates, we use Q-learning to generate a new candidate p′
//! for a valuable candidate p. We use a Q-value to indicate how good each
//! revision choice is \[and\] apply the revision choice with the highest
//! Q-value." A DQN — our from-scratch 4-layer [`crate::nn::Mlp`] — predicts
//! Q-values from schedule features; a replay buffer smooths the updates.
//! The network "is reused for all design points in a software space".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::nn::Mlp;
use crate::schedule::{Revision, Schedule, ScheduleContext, MAX_DIMS, NUM_REVISIONS};

/// One replay-buffer transition.
#[derive(Debug, Clone)]
struct Transition {
    state: Vec<f64>,
    action: usize,
    reward: f64,
    next_state: Vec<f64>,
}

/// DQN-based revision policy.
#[derive(Debug)]
pub struct QLearner {
    net: Mlp,
    rng: SmallRng,
    replay: Vec<Transition>,
    /// Exploration rate (ε-greedy), decayed multiplicatively per step.
    pub epsilon: f64,
    /// Discount factor.
    pub gamma: f64,
    /// SGD learning rate.
    pub learning_rate: f64,
    replay_cap: usize,
    batch: usize,
}

impl QLearner {
    /// Creates a learner with the paper's 4-layer network.
    pub fn new(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = Mlp::new(2 * MAX_DIMS + 2, 48, NUM_REVISIONS, &mut rng);
        QLearner {
            net,
            rng,
            replay: Vec::new(),
            epsilon: 0.3,
            gamma: 0.7,
            learning_rate: 0.005,
            replay_cap: 512,
            batch: 16,
        }
    }

    /// Q-values for a schedule.
    pub fn q_values(&self, sched: &Schedule, ctx: &ScheduleContext) -> Vec<f64> {
        self.net.predict(&sched.features(ctx))
    }

    /// Picks a revision for `sched`: the applicable action with the highest
    /// Q-value (ε-greedy), returning the revised schedule and the action id.
    pub fn propose(
        &mut self,
        sched: &Schedule,
        ctx: &ScheduleContext,
    ) -> Option<(Schedule, usize)> {
        let q = self.q_values(sched, ctx);
        // Applicable actions with their revised schedules.
        let mut applicable: Vec<(usize, Schedule)> = Vec::new();
        for a in 0..NUM_REVISIONS {
            if let Some(s) = Revision::from_action(a).apply(sched, ctx, &mut self.rng) {
                applicable.push((a, s));
            }
        }
        if applicable.is_empty() {
            return None;
        }
        let pick = if self.rng.gen_bool(self.epsilon) {
            self.rng.gen_range(0..applicable.len())
        } else {
            applicable
                .iter()
                .enumerate()
                .max_by(|(_, (a1, _)), (_, (a2, _))| {
                    q[*a1].partial_cmp(&q[*a2]).expect("finite Q-values")
                })
                .map(|(i, _)| i)
                .expect("non-empty")
        };
        let (action, revised) = applicable.swap_remove(pick);
        Some((revised, action))
    }

    /// Records the outcome of applying `action` (latency-based reward) and
    /// trains on a replay mini-batch.
    pub fn observe(&mut self, state: Vec<f64>, action: usize, reward: f64, next_state: Vec<f64>) {
        if self.replay.len() == self.replay_cap {
            let i = self.rng.gen_range(0..self.replay.len());
            self.replay.swap_remove(i);
        }
        self.replay.push(Transition {
            state,
            action,
            reward,
            next_state,
        });
        for _ in 0..self.batch.min(self.replay.len()) {
            let t = &self.replay[self.rng.gen_range(0..self.replay.len())];
            let next_q = self.net.predict(&t.next_state);
            let max_next = next_q.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let target = t.reward + self.gamma * max_next;
            let (s, a) = (t.state.clone(), t.action);
            self.net.train_on_output(&s, a, target, self.learning_rate);
        }
        self.epsilon = (self.epsilon * 0.995).max(0.05);
    }

    /// Latency-delta reward: positive when the revision reduced latency.
    pub fn reward(before_latency: f64, after_latency: f64) -> f64 {
        if before_latency <= 0.0 {
            return 0.0;
        }
        ((before_latency - after_latency) / before_latency).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_model::arch::AcceleratorConfig;
    use tensor_ir::intrinsics::IntrinsicKind;
    use tensor_ir::suites;

    fn ctx() -> ScheduleContext {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        let wl = suites::gemm_workload("g", 128, 128, 128);
        ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap()
    }

    #[test]
    fn proposes_applicable_revisions() {
        let c = ctx();
        let mut q = QLearner::new(0);
        let mut rng = SmallRng::seed_from_u64(1);
        let s = c.random_schedule(&mut rng);
        for _ in 0..20 {
            let (revised, action) = q.propose(&s, &c).expect("some revision applies");
            assert!(action < NUM_REVISIONS);
            assert!(revised.validate(&c).is_ok());
        }
    }

    #[test]
    fn reward_sign_tracks_improvement() {
        assert!(QLearner::reward(100.0, 50.0) > 0.0);
        assert!(QLearner::reward(50.0, 100.0) < 0.0);
        assert_eq!(QLearner::reward(0.0, 10.0), 0.0);
        assert_eq!(QLearner::reward(10.0, 10.0), 0.0);
    }

    #[test]
    fn epsilon_decays_with_observations() {
        let c = ctx();
        let mut q = QLearner::new(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let s = c.random_schedule(&mut rng);
        let feat = s.features(&c);
        let e0 = q.epsilon;
        for _ in 0..50 {
            q.observe(feat.clone(), 0, 0.1, feat.clone());
        }
        assert!(q.epsilon < e0);
        assert!(q.epsilon >= 0.05);
    }

    #[test]
    fn learns_to_prefer_rewarded_action() {
        let c = ctx();
        let mut q = QLearner::new(4);
        q.epsilon = 0.0;
        let mut rng = SmallRng::seed_from_u64(5);
        let s = c.random_schedule(&mut rng);
        let feat = s.features(&c);
        // Action 3 always yields high reward, others zero.
        for a in 0..NUM_REVISIONS {
            let r = if a == 3 { 1.0 } else { 0.0 };
            for _ in 0..30 {
                q.observe(feat.clone(), a, r, feat.clone());
            }
        }
        let qv = q.q_values(&s, &c);
        let best = qv
            .iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| x.partial_cmp(y).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(best, 3, "Q-values: {qv:?}");
    }

    #[test]
    fn replay_buffer_is_bounded() {
        let c = ctx();
        let mut q = QLearner::new(6);
        let mut rng = SmallRng::seed_from_u64(7);
        let s = c.random_schedule(&mut rng);
        let feat = s.features(&c);
        for _ in 0..1000 {
            q.observe(feat.clone(), 0, 0.0, feat.clone());
        }
        assert!(q.replay.len() <= 512);
    }
}
