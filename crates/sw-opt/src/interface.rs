//! Interface generation (§VI-C): lowering a schedule to the accelerator's
//! instruction stream.
//!
//! "HASCO inserts the data movement instructions before and after the
//! intrinsic call to prepare the scratchpad. Then it replaces the intrinsic
//! call with the compute instructions." Loads are emitted only when an
//! outer loop that the tensor depends on has advanced — the instruction
//! stream realizes exactly the reuse the lowering analysis prices.

use accel_model::arch::AcceleratorConfig;
use accel_model::isa::{Instr, Program};
use tensor_ir::expr::Access;

use crate::lowering::{self, LoweredSchedule};
use crate::schedule::{Schedule, ScheduleContext};
use crate::SwError;

/// A generated interface: the instruction stream plus bookkeeping.
#[derive(Debug, Clone)]
pub struct Interface {
    /// The instruction stream (possibly truncated, see
    /// [`Interface::truncated`]).
    pub program: Program,
    /// The lowering detail used to emit the stream.
    pub lowered: LoweredSchedule,
    /// True when the stream was capped at `max_invocations` stages; the
    /// simulator result then covers a prefix of the execution.
    pub truncated: bool,
}

/// Per-invocation reload period of a tensor: the number of consecutive
/// invocations that share its tile (product of trip counts *inside* its
/// reuse level).
fn reload_period(sched: &Schedule, ctx: &ScheduleContext, access: &Access) -> u64 {
    let level = sched
        .outer_order
        .iter()
        .enumerate()
        .filter(|(_, &idx)| access.uses(idx))
        .map(|(pos, _)| pos)
        .max();
    match level {
        None => u64::MAX,
        Some(level) => sched.outer_order[level + 1..]
            .iter()
            .map(|&idx| sched.trip_count(ctx, idx))
            .product(),
    }
}

/// Generates the instruction stream for a schedule, emitting at most
/// `max_invocations` interface stages.
///
/// # Errors
/// Propagates lowering errors (invalid schedule / scratchpad overflow).
pub fn generate_program(
    sched: &Schedule,
    ctx: &ScheduleContext,
    cfg: &AcceleratorConfig,
    max_invocations: u64,
) -> Result<Interface, SwError> {
    let lowered = lowering::lower(sched, ctx, cfg)?;
    let comp = &ctx.workload.comp;
    let dtype = cfg.dtype_bytes;

    // Per-tensor tile bytes, contiguity, and reload periods.
    struct TensorInfo {
        name: String,
        bytes: u64,
        run: u64,
        period: u64,
    }
    let info = |acc: &Access| -> TensorInfo {
        let shape: Vec<u64> = acc
            .dims
            .iter()
            .map(|d| {
                let s: u64 = d.terms.iter().map(|t| sched.inner_extent(*t)).sum();
                s + 1 - d.terms.len() as u64
            })
            .collect();
        let bytes = shape.iter().product::<u64>() * dtype;
        // Contiguity mirrors the lowering analysis: simple-subscript
        // tensors are tile-packed; affine ones use the trailing-run rule.
        let run = if acc.dims.iter().all(|d| d.is_simple()) {
            bytes
        } else {
            let full = comp.tensor_shape(acc);
            let mut run = 1u64;
            for (i, (&f, &t)) in full.iter().zip(shape.iter()).enumerate().rev() {
                run = run.saturating_mul(t);
                if t < f || (i != full.len() - 1 && t != f) {
                    break;
                }
            }
            run * dtype
        };
        TensorInfo {
            name: acc.tensor.clone(),
            bytes,
            run: run.max(dtype),
            period: reload_period(sched, ctx, acc),
        }
    };
    let inputs: Vec<TensorInfo> = comp.inputs.iter().map(info).collect();
    let output = info(&comp.output);

    let spad_per_invocation = lowered.plan.spad_traffic_bytes / lowered.invocations.max(1);
    let macs_per_invocation = lowered.plan.macs_padded / lowered.invocations.max(1);

    let total = lowered.invocations;
    let emit = total.min(max_invocations);
    let mut program = Program::new();
    for inv in 0..emit {
        for t in &inputs {
            if t.period == u64::MAX || inv % t.period.max(1) == 0 {
                program.push(Instr::Load {
                    tensor: t.name.clone(),
                    bytes: t.bytes,
                    contiguous_run: t.run,
                });
            }
        }
        program.push(Instr::Compute {
            calls: lowered.calls_per_invocation,
            macs: macs_per_invocation,
            spad_bytes: spad_per_invocation,
        });
        if output.period == u64::MAX || (inv + 1) % output.period.max(1) == 0 {
            program.push(Instr::Store {
                tensor: output.name.clone(),
                bytes: output.bytes,
                contiguous_run: output.run,
            });
        }
        program.push(Instr::Barrier);
    }
    Ok(Interface {
        program,
        lowered,
        truncated: emit < total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_model::sim::TraceSimulator;
    use std::collections::BTreeMap;
    use tensor_ir::intrinsics::IntrinsicKind;
    use tensor_ir::suites;
    use tensor_ir::IndexId;

    fn setup() -> (ScheduleContext, AcceleratorConfig, Schedule) {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        let wl = suites::gemm_workload("g", 128, 128, 128);
        let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
        let choice = ctx
            .choices
            .iter()
            .find(|c| c.tensorized_indices().len() == 3 && !c.needs_rearrangement)
            .unwrap()
            .clone();
        let comp = &ctx.workload.comp;
        let mut tiles = BTreeMap::new();
        for name in ["i", "j", "k"] {
            tiles.insert(comp.index_by_name(name).unwrap(), 64);
        }
        let outer_order: Vec<IndexId> = ["i", "j", "k"]
            .iter()
            .map(|n| comp.index_by_name(n).unwrap())
            .collect();
        let sched = Schedule {
            choice,
            tiles,
            outer_order,
            fuse_outer: 0,
        };
        (ctx, cfg, sched)
    }

    #[test]
    fn program_has_one_stage_per_invocation() {
        let (ctx, cfg, sched) = setup();
        let iface = generate_program(&sched, &ctx, &cfg, 1000).unwrap();
        assert!(!iface.truncated);
        assert_eq!(
            iface.program.stage_count() as u64,
            iface.lowered.invocations
        );
        assert_eq!(iface.lowered.invocations, 8); // (128/64)^3
    }

    #[test]
    fn loads_respect_reuse_periods() {
        let (ctx, cfg, sched) = setup();
        let iface = generate_program(&sched, &ctx, &cfg, 1000).unwrap();
        // Total loaded bytes must equal the lowering's DRAM read traffic
        // (minus the synthetic accumulator reads, which the instruction
        // stream realizes as explicit loads only via the (acc) entry).
        let reads_plain: u64 = iface
            .lowered
            .plan
            .dram_reads
            .iter()
            .filter(|t| !t.tensor.ends_with("(acc)"))
            .map(|t| t.bytes)
            .sum();
        assert_eq!(iface.program.total_load_bytes(), reads_plain);
    }

    #[test]
    fn stores_match_write_traffic() {
        let (ctx, cfg, sched) = setup();
        let iface = generate_program(&sched, &ctx, &cfg, 1000).unwrap();
        let writes: u64 = iface.lowered.plan.dram_writes.iter().map(|t| t.bytes).sum();
        assert_eq!(iface.program.total_store_bytes(), writes);
    }

    #[test]
    fn compute_totals_match_plan() {
        let (ctx, cfg, sched) = setup();
        let iface = generate_program(&sched, &ctx, &cfg, 1000).unwrap();
        assert_eq!(
            iface.program.total_calls(),
            iface.lowered.plan.intrinsic_calls
        );
        assert_eq!(iface.program.total_macs(), iface.lowered.plan.macs_padded);
    }

    #[test]
    fn truncation_caps_stages() {
        let (ctx, cfg, sched) = setup();
        let iface = generate_program(&sched, &ctx, &cfg, 3).unwrap();
        assert!(iface.truncated);
        assert_eq!(iface.program.stage_count(), 3);
    }

    #[test]
    fn simulated_latency_close_to_analytical() {
        let (ctx, cfg, sched) = setup();
        let iface = generate_program(&sched, &ctx, &cfg, 10_000).unwrap();
        let sim = TraceSimulator::default();
        let traced = sim
            .run(&cfg, &iface.program, iface.lowered.plan.double_buffered)
            .cycles;
        let analytical = sim.model.latency_cycles(&cfg, &iface.lowered.plan);
        let ratio = traced / analytical;
        assert!((0.4..2.5).contains(&ratio), "ratio = {ratio}");
    }
}
