//! Schedules: concrete software optimizations (§VI-A).
//!
//! A schedule fixes the factors of the primitive sequence
//! `[split, reorder, fuse, tensorize]`: which tensorize choice is used, the
//! tensorized tile sizes (the interface sub-workload), the order of the
//! outer software loops, and how many outermost loops are fused.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tensor_ir::intrinsics::Intrinsic;
use tensor_ir::matching::{find_tensorize_choices, MatchOptions, TensorizeChoice};
use tensor_ir::workload::Workload;
use tensor_ir::IndexId;

use crate::primitives::{PrimitiveSequence, SwPrimitive};
use crate::SwError;

/// Maximum loop dimensions supported by the fixed-size feature encoding.
pub const MAX_DIMS: usize = 8;

/// Number of discrete revision actions (the Q-network's output arity).
pub const NUM_REVISIONS: usize = 2 * MAX_DIMS + (MAX_DIMS - 1) + 3;

/// A concrete software optimization for one workload on one accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// The tensorize choice (HW/SW partitioning) this schedule uses.
    pub choice: TensorizeChoice,
    /// Tile size per tensorized compute loop — the sub-workload the
    /// interface processes per invocation.
    pub tiles: BTreeMap<IndexId, u64>,
    /// The outer software loops, outermost first. A permutation of all the
    /// workload's loops (tensorized loops appear as their tile loops).
    pub outer_order: Vec<IndexId>,
    /// Number of outermost loops fused into one launch loop.
    pub fuse_outer: usize,
}

/// The software design space of one (workload, accelerator) pair: the
/// tensorize choices found by the matcher plus the intrinsic geometry.
#[derive(Debug, Clone)]
pub struct ScheduleContext {
    /// The workload being scheduled.
    pub workload: Workload,
    /// The accelerator's intrinsic (geometry from the PE array).
    pub intrinsic: Intrinsic,
    /// All legal tensorize choices for this pair.
    pub choices: Vec<TensorizeChoice>,
}

impl ScheduleContext {
    /// Builds the context by running the two-step matcher.
    ///
    /// # Errors
    /// Returns [`SwError::NoTensorizeChoice`] when the matcher finds no
    /// legal partitioning.
    pub fn new(workload: &Workload, intrinsic: &Intrinsic) -> Result<Self, SwError> {
        let choices =
            find_tensorize_choices(&workload.comp, &intrinsic.comp, &MatchOptions::default());
        if choices.is_empty() {
            return Err(SwError::NoTensorizeChoice {
                workload: workload.name.clone(),
                intrinsic: intrinsic.kind.name().into(),
            });
        }
        Ok(ScheduleContext {
            workload: workload.clone(),
            intrinsic: intrinsic.clone(),
            choices,
        })
    }

    /// The intrinsic extent bound to a tensorized compute loop under a
    /// choice (the PE-array-imposed stride of that loop).
    pub fn intrinsic_extent(&self, choice: &TensorizeChoice, compute_idx: IndexId) -> u64 {
        choice
            .var_map
            .iter()
            .filter(|&&(_, c)| c == compute_idx)
            .map(|&(q, _)| self.intrinsic.comp.index(q).extent)
            .max()
            .unwrap_or(1)
    }

    /// Generates a random schedule for a random choice.
    pub fn random_schedule<R: Rng + ?Sized>(&self, rng: &mut R) -> Schedule {
        let choice = self.choices[rng.gen_range(0..self.choices.len())].clone();
        self.random_schedule_for(&choice, rng)
    }

    /// Generates a random schedule for a specific choice: tiles are random
    /// multiples of the intrinsic extent, the order is a random
    /// permutation, fusion is 0–2 loops.
    pub fn random_schedule_for<R: Rng + ?Sized>(
        &self,
        choice: &TensorizeChoice,
        rng: &mut R,
    ) -> Schedule {
        let mut tiles = BTreeMap::new();
        for idx in choice.tensorized_indices() {
            let ext = self.workload.comp.index(idx).extent;
            let base = self.intrinsic_extent(choice, idx).min(ext).max(1);
            // Multiples of the intrinsic extent plus the full extent (full
            // tiles avoid edge padding and are frequently optimal).
            let multipliers = [1u64, 2, 3, 4, 6, 8, 16];
            let tile = if rng.gen_bool(0.25) {
                ext
            } else {
                let m = multipliers[rng.gen_range(0..multipliers.len())];
                (base * m).min(ext)
            };
            tiles.insert(idx, tile.max(1));
        }
        let mut outer_order: Vec<IndexId> =
            (0..self.workload.comp.indices.len()).map(IndexId).collect();
        // Fisher-Yates shuffle.
        for i in (1..outer_order.len()).rev() {
            let j = rng.gen_range(0..=i);
            outer_order.swap(i, j);
        }
        let fuse_outer = rng.gen_range(0..=2usize.min(outer_order.len()));
        Schedule {
            choice: choice.clone(),
            tiles,
            outer_order,
            fuse_outer,
        }
    }
}

impl Schedule {
    /// Validates against a workload.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self, ctx: &ScheduleContext) -> Result<(), SwError> {
        let n = ctx.workload.comp.indices.len();
        // Order must be a permutation of all loops.
        if self.outer_order.len() != n {
            return Err(SwError::BadOrder);
        }
        let mut seen = vec![false; n];
        for id in &self.outer_order {
            if id.0 >= n || seen[id.0] {
                return Err(SwError::BadOrder);
            }
            seen[id.0] = true;
        }
        if self.fuse_outer > n {
            return Err(SwError::BadOrder);
        }
        // Tiles exactly on the tensorized indices, within extents.
        let tensorized = self.choice.tensorized_indices();
        for idx in &tensorized {
            match self.tiles.get(idx) {
                None => {
                    return Err(SwError::BadTile {
                        index: ctx.workload.comp.index(*idx).name.clone(),
                        tile: 0,
                    })
                }
                Some(&t) => {
                    let ext = ctx.workload.comp.index(*idx).extent;
                    if t == 0 || t > ext {
                        return Err(SwError::BadTile {
                            index: ctx.workload.comp.index(*idx).name.clone(),
                            tile: t,
                        });
                    }
                }
            }
        }
        for idx in self.tiles.keys() {
            if !tensorized.contains(idx) {
                return Err(SwError::BadIndex(idx.0));
            }
        }
        Ok(())
    }

    /// Trip count of an outer loop: `ceil(extent / tile)` for tensorized
    /// loops, the full extent otherwise.
    pub fn trip_count(&self, ctx: &ScheduleContext, idx: IndexId) -> u64 {
        let ext = ctx.workload.comp.index(idx).extent;
        match self.tiles.get(&idx) {
            Some(&t) => ext.div_ceil(t),
            None => ext,
        }
    }

    /// Total interface invocations (product of outer trip counts).
    pub fn invocations(&self, ctx: &ScheduleContext) -> u64 {
        self.outer_order
            .iter()
            .map(|&i| self.trip_count(ctx, i))
            .product()
    }

    /// The tile extent used *inside* one interface invocation: the tile for
    /// tensorized loops, 1 otherwise (outer loops are fixed per call).
    pub fn inner_extent(&self, idx: IndexId) -> u64 {
        self.tiles.get(&idx).copied().unwrap_or(1)
    }

    /// The paper's Fig. 5(c) view: the primitive sequence of this schedule.
    pub fn primitive_sequence(&self, ctx: &ScheduleContext) -> PrimitiveSequence {
        let mut primitives = Vec::new();
        for (&idx, &tile) in &self.tiles {
            primitives.push(SwPrimitive::Split {
                index: idx,
                outer: self.trip_count(ctx, idx),
                inner: tile,
            });
        }
        primitives.push(SwPrimitive::Reorder {
            order: self.outer_order.clone(),
        });
        if self.fuse_outer > 0 {
            primitives.push(SwPrimitive::Fuse {
                count: self.fuse_outer,
            });
        }
        primitives.push(SwPrimitive::Tensorize {
            tiles: self.tiles.iter().map(|(&i, &t)| (i, t)).collect(),
            intrinsic: self.choice.intrinsic.clone(),
        });
        PrimitiveSequence { primitives }
    }

    /// Fixed-size feature vector for the Q-network: per-dimension log tile
    /// multipliers, per-dimension order positions, fusion depth, and choice
    /// identity.
    pub fn features(&self, ctx: &ScheduleContext) -> Vec<f64> {
        let n = ctx.workload.comp.indices.len().min(MAX_DIMS);
        let mut feat = vec![0.0; 2 * MAX_DIMS + 2];
        for d in 0..n {
            let idx = IndexId(d);
            if let Some(&t) = self.tiles.get(&idx) {
                let base = ctx.intrinsic_extent(&self.choice, idx).max(1);
                feat[d] = ((t as f64 / base as f64).log2() / 6.0).clamp(0.0, 1.0);
            }
            if let Some(pos) = self.outer_order.iter().position(|&i| i == idx) {
                feat[MAX_DIMS + d] = pos as f64 / self.outer_order.len().max(1) as f64;
            }
        }
        feat[2 * MAX_DIMS] = self.fuse_outer as f64 / self.outer_order.len().max(1) as f64;
        let choice_id = ctx
            .choices
            .iter()
            .position(|c| c.var_map == self.choice.var_map)
            .unwrap_or(0);
        feat[2 * MAX_DIMS + 1] = choice_id as f64 / ctx.choices.len().max(1) as f64;
        feat
    }
}

/// One discrete revision of a candidate schedule (the Q-learning action
/// space of Fig. 5(e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Revision {
    /// Double the tile of the d-th tensorized dimension.
    GrowTile(usize),
    /// Halve the tile of the d-th tensorized dimension (floor at the
    /// intrinsic extent).
    ShrinkTile(usize),
    /// Swap outer loops at positions (pos, pos + 1).
    SwapOrder(usize),
    /// Fuse one more outer loop.
    IncFuse,
    /// Fuse one fewer outer loop.
    DecFuse,
    /// Re-tensorize: switch to the next tensorize choice.
    SwitchChoice,
}

impl Revision {
    /// Decodes an action id in `0..NUM_REVISIONS`.
    pub fn from_action(a: usize) -> Revision {
        if a < MAX_DIMS {
            Revision::GrowTile(a)
        } else if a < 2 * MAX_DIMS {
            Revision::ShrinkTile(a - MAX_DIMS)
        } else if a < 2 * MAX_DIMS + (MAX_DIMS - 1) {
            Revision::SwapOrder(a - 2 * MAX_DIMS)
        } else {
            match a - (2 * MAX_DIMS + MAX_DIMS - 1) {
                0 => Revision::IncFuse,
                1 => Revision::DecFuse,
                _ => Revision::SwitchChoice,
            }
        }
    }

    /// Applies the revision, returning the revised schedule, or `None` when
    /// the action is inapplicable (used for action masking).
    pub fn apply<R: Rng + ?Sized>(
        &self,
        sched: &Schedule,
        ctx: &ScheduleContext,
        rng: &mut R,
    ) -> Option<Schedule> {
        let mut s = sched.clone();
        let tensorized: Vec<IndexId> = {
            let mut v: Vec<IndexId> = s.tiles.keys().copied().collect();
            v.sort();
            v
        };
        match *self {
            Revision::GrowTile(d) => {
                let idx = *tensorized.get(d)?;
                let ext = ctx.workload.comp.index(idx).extent;
                let t = s.tiles[&idx];
                if t >= ext {
                    return None;
                }
                s.tiles.insert(idx, (t * 2).min(ext));
            }
            Revision::ShrinkTile(d) => {
                let idx = *tensorized.get(d)?;
                let floor = ctx
                    .intrinsic_extent(&s.choice, idx)
                    .min(ctx.workload.comp.index(idx).extent)
                    .max(1);
                let t = s.tiles[&idx];
                if t <= floor {
                    return None;
                }
                s.tiles.insert(idx, (t / 2).max(floor));
            }
            Revision::SwapOrder(pos) => {
                if pos + 1 >= s.outer_order.len() {
                    return None;
                }
                s.outer_order.swap(pos, pos + 1);
            }
            Revision::IncFuse => {
                if s.fuse_outer >= s.outer_order.len() {
                    return None;
                }
                s.fuse_outer += 1;
            }
            Revision::DecFuse => {
                if s.fuse_outer == 0 {
                    return None;
                }
                s.fuse_outer -= 1;
            }
            Revision::SwitchChoice => {
                if ctx.choices.len() <= 1 {
                    return None;
                }
                let cur = ctx
                    .choices
                    .iter()
                    .position(|c| c.var_map == s.choice.var_map)
                    .unwrap_or(0);
                let next = ctx.choices[(cur + 1) % ctx.choices.len()].clone();
                let mut fresh = ctx.random_schedule_for(&next, rng);
                fresh.outer_order = s.outer_order.clone();
                fresh.fuse_outer = s.fuse_outer;
                s = fresh;
            }
        }
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tensor_ir::intrinsics::gemm_intrinsic;
    use tensor_ir::suites;

    fn ctx() -> ScheduleContext {
        let wl = suites::gemm_workload("g", 128, 128, 128);
        ScheduleContext::new(&wl, &gemm_intrinsic(16, 16, 16)).unwrap()
    }

    #[test]
    fn context_finds_choices() {
        let c = ctx();
        assert!(!c.choices.is_empty());
    }

    #[test]
    fn random_schedules_validate() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let s = c.random_schedule(&mut rng);
            assert!(s.validate(&c).is_ok(), "{s:?}");
        }
    }

    #[test]
    fn trip_counts_round_up() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut s = c.random_schedule(&mut rng);
        let idx = *s.tiles.keys().next().unwrap();
        s.tiles.insert(idx, 48); // 128 / 48 -> 3 tiles
        assert_eq!(s.trip_count(&c, idx), 3);
        assert_eq!(s.inner_extent(idx), 48);
    }

    #[test]
    fn invocations_multiply_trips() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut s = c.random_schedule(&mut rng);
        for idx in s.tiles.keys().copied().collect::<Vec<_>>() {
            s.tiles.insert(idx, 64);
        }
        // 3 loops; tensorized have 128/64 = 2 trips each; non-tensorized 128.
        let tens = s.tiles.len() as u32;
        let expected = 2u64.pow(tens) * 128u64.pow(3 - tens);
        assert_eq!(s.invocations(&c), expected);
    }

    #[test]
    fn validate_rejects_bad_order() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut s = c.random_schedule(&mut rng);
        s.outer_order = vec![IndexId(0), IndexId(0), IndexId(1)];
        assert_eq!(s.validate(&c), Err(SwError::BadOrder));
        s.outer_order = vec![IndexId(0)];
        assert_eq!(s.validate(&c), Err(SwError::BadOrder));
    }

    #[test]
    fn validate_rejects_oversized_tile() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut s = c.random_schedule(&mut rng);
        let idx = *s.tiles.keys().next().unwrap();
        s.tiles.insert(idx, 10_000);
        assert!(matches!(s.validate(&c), Err(SwError::BadTile { .. })));
    }

    #[test]
    fn grow_and_shrink_are_inverse_within_bounds() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut s = c.random_schedule(&mut rng);
        let keys: Vec<IndexId> = s.tiles.keys().copied().collect();
        for idx in keys {
            s.tiles.insert(idx, 32);
        }
        let grown = Revision::GrowTile(0).apply(&s, &c, &mut rng).unwrap();
        let key0 = *s.tiles.keys().next().unwrap();
        assert_eq!(grown.tiles[&key0], 64);
        let back = Revision::ShrinkTile(0).apply(&grown, &c, &mut rng).unwrap();
        assert_eq!(back.tiles[&key0], 32);
    }

    #[test]
    fn shrink_floors_at_intrinsic_extent() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut s = c.random_schedule(&mut rng);
        let key0 = *s.tiles.keys().next().unwrap();
        s.tiles.insert(key0, 16); // == intrinsic extent
        assert_eq!(Revision::ShrinkTile(0).apply(&s, &c, &mut rng), None);
    }

    #[test]
    fn swap_order_is_local() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(8);
        let s = c.random_schedule(&mut rng);
        let swapped = Revision::SwapOrder(0).apply(&s, &c, &mut rng).unwrap();
        assert_eq!(swapped.outer_order[0], s.outer_order[1]);
        assert_eq!(swapped.outer_order[1], s.outer_order[0]);
        assert_eq!(Revision::SwapOrder(99).apply(&s, &c, &mut rng), None);
    }

    #[test]
    fn fuse_revisions_respect_bounds() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut s = c.random_schedule(&mut rng);
        s.fuse_outer = 0;
        assert_eq!(Revision::DecFuse.apply(&s, &c, &mut rng), None);
        let inc = Revision::IncFuse.apply(&s, &c, &mut rng).unwrap();
        assert_eq!(inc.fuse_outer, 1);
    }

    #[test]
    fn switch_choice_changes_mapping_when_possible() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(10);
        let s = c.random_schedule_for(&c.choices[0].clone(), &mut rng);
        if c.choices.len() > 1 {
            let switched = Revision::SwitchChoice.apply(&s, &c, &mut rng).unwrap();
            assert_ne!(switched.choice.var_map, s.choice.var_map);
            assert!(switched.validate(&c).is_ok());
        }
    }

    #[test]
    fn action_decoding_roundtrip() {
        let mut kinds = std::collections::BTreeSet::new();
        for a in 0..NUM_REVISIONS {
            let r = Revision::from_action(a);
            kinds.insert(format!("{r:?}"));
        }
        assert_eq!(kinds.len(), NUM_REVISIONS);
        assert_eq!(Revision::from_action(0), Revision::GrowTile(0));
        assert_eq!(Revision::from_action(MAX_DIMS), Revision::ShrinkTile(0));
        assert_eq!(
            Revision::from_action(NUM_REVISIONS - 1),
            Revision::SwitchChoice
        );
    }

    #[test]
    fn features_are_fixed_size_and_bounded() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..20 {
            let s = c.random_schedule(&mut rng);
            let f = s.features(&c);
            assert_eq!(f.len(), 2 * MAX_DIMS + 2);
            assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)), "{f:?}");
        }
    }

    #[test]
    fn primitive_sequence_has_expected_skeleton() {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut s = c.random_schedule(&mut rng);
        s.fuse_outer = 1;
        let seq = s.primitive_sequence(&c);
        let skel = seq.skeleton();
        assert!(skel.contains(&"split"));
        assert!(skel.contains(&"reorder"));
        assert!(skel.contains(&"fuse"));
        assert_eq!(*skel.last().unwrap(), "tensorize");
    }
}
