//! A tiny from-scratch multi-layer perceptron — the 4-layer fully-connected
//! network behind the paper's DQN (§VI-B: "we use the DQN algorithm to
//! train a 4-layer fully-connected neural network, which predicts
//! Q-values").
//!
//! Plain `f64` math, ReLU activations, squared-error loss on selected
//! outputs, and SGD — everything the Q-learner needs and nothing more.

use rand::Rng;

/// A fully-connected layer.
#[derive(Debug, Clone)]
struct Layer {
    w: Vec<f64>, // out x in, row-major
    b: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl Layer {
    fn new<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        // He initialization.
        let scale = (2.0 / inputs as f64).sqrt();
        let w = (0..inputs * outputs)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Layer {
            w,
            b: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.b.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
            *yo += row.iter().zip(x.iter()).map(|(w, x)| w * x).sum::<f64>();
        }
        y
    }
}

/// A 4-layer MLP: input → hidden → hidden → output, ReLU between layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
}

/// Cached activations from a forward pass, needed for the backward pass.
#[derive(Debug, Clone)]
pub struct ForwardPass {
    /// Pre-activation values per layer.
    pre: Vec<Vec<f64>>,
    /// Post-activation values per layer (index 0 is the input).
    post: Vec<Vec<f64>>,
}

impl ForwardPass {
    /// The network output.
    pub fn output(&self) -> &[f64] {
        self.post.last().expect("forward pass has layers")
    }
}

impl Mlp {
    /// Creates a 4-layer network with the given widths.
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, output: usize, rng: &mut R) -> Self {
        Mlp {
            layers: vec![
                Layer::new(input, hidden, rng),
                Layer::new(hidden, hidden, rng),
                Layer::new(hidden, hidden, rng),
                Layer::new(hidden, output, rng),
            ],
        }
    }

    /// Number of layers (always 4).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass returning the cached activations.
    pub fn forward(&self, x: &[f64]) -> ForwardPass {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut post = vec![x.to_vec()];
        for (li, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(post.last().expect("non-empty"));
            let last = li == self.layers.len() - 1;
            let a = if last {
                z.clone()
            } else {
                z.iter().map(|&v| v.max(0.0)).collect()
            };
            pre.push(z);
            post.push(a);
        }
        ForwardPass { pre, post }
    }

    /// Convenience: forward pass returning only the output.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.forward(x).output().to_vec()
    }

    /// One SGD step on the squared error of a single output unit
    /// (Q-learning updates only the taken action's Q-value). Returns the
    /// pre-update error.
    pub fn train_on_output(
        &mut self,
        x: &[f64],
        action: usize,
        target: f64,
        learning_rate: f64,
    ) -> f64 {
        let fp = self.forward(x);
        let out = fp.output();
        let error = out[action] - target;
        // Output-layer gradient: only `action` has nonzero dL/dz.
        let mut grad: Vec<f64> = vec![0.0; out.len()];
        grad[action] = error;
        // Backprop through layers.
        for li in (0..self.layers.len()).rev() {
            let input = &fp.post[li];
            let layer = &mut self.layers[li];
            // Gradient wrt inputs for the next (lower) layer.
            let mut grad_in = vec![0.0; layer.inputs];
            for (o, &g) in grad.iter().enumerate().take(layer.outputs) {
                if g == 0.0 {
                    continue;
                }
                let row_start = o * layer.inputs;
                for i in 0..layer.inputs {
                    grad_in[i] += layer.w[row_start + i] * g;
                    layer.w[row_start + i] -= learning_rate * g * input[i];
                }
                layer.b[o] -= learning_rate * g;
            }
            if li > 0 {
                // ReLU derivative at the previous layer's pre-activation.
                let prev_pre = &fp.pre[li - 1];
                grad = grad_in
                    .iter()
                    .zip(prev_pre.iter())
                    .map(|(&g, &z)| if z > 0.0 { g } else { 0.0 })
                    .collect();
            }
        }
        0.5 * error * error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn has_four_layers() {
        let mut rng = SmallRng::seed_from_u64(0);
        let net = Mlp::new(4, 8, 3, &mut rng);
        assert_eq!(net.depth(), 4);
        assert_eq!(net.predict(&[0.1, 0.2, 0.3, 0.4]).len(), 3);
    }

    #[test]
    fn learns_a_constant_target() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut net = Mlp::new(2, 16, 2, &mut rng);
        let x = [0.5, -0.3];
        for _ in 0..500 {
            net.train_on_output(&x, 0, 1.0, 0.01);
            net.train_on_output(&x, 1, -1.0, 0.01);
        }
        let y = net.predict(&x);
        assert!((y[0] - 1.0).abs() < 0.05, "y0 = {}", y[0]);
        assert!((y[1] + 1.0).abs() < 0.05, "y1 = {}", y[1]);
    }

    #[test]
    fn learns_input_dependent_targets() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut net = Mlp::new(1, 24, 1, &mut rng);
        // Fit y = 2x - 0.5 on a small grid.
        let grid: Vec<f64> = (0..11).map(|i| i as f64 / 10.0).collect();
        for _ in 0..3000 {
            for &x in &grid {
                net.train_on_output(&[x], 0, 2.0 * x - 0.5, 0.02);
            }
        }
        for &x in &grid {
            let y = net.predict(&[x])[0];
            assert!((y - (2.0 * x - 0.5)).abs() < 0.1, "x = {x}: y = {y}");
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut net = Mlp::new(3, 12, 4, &mut rng);
        let x = [0.2, 0.4, 0.9];
        let first = net.train_on_output(&x, 2, 0.7, 0.05);
        for _ in 0..100 {
            net.train_on_output(&x, 2, 0.7, 0.05);
        }
        let last = net.train_on_output(&x, 2, 0.7, 0.05);
        assert!(last < first * 0.1, "loss {first} -> {last}");
    }

    #[test]
    fn untouched_outputs_drift_less_than_trained_one() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut net = Mlp::new(2, 8, 3, &mut rng);
        let x = [0.3, 0.6];
        let before = net.predict(&x);
        for _ in 0..50 {
            net.train_on_output(&x, 1, 5.0, 0.01);
        }
        let after = net.predict(&x);
        let trained_delta = (after[1] - before[1]).abs();
        let other_delta = (after[0] - before[0])
            .abs()
            .max((after[2] - before[2]).abs());
        assert!(
            trained_delta > other_delta,
            "{trained_delta} vs {other_delta}"
        );
    }
}
