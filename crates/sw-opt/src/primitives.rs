//! The software primitives of §VI-A: `split`, `reorder`, `fuse`,
//! `tensorize`.
//!
//! A primitive sequence is the *skeleton* of an optimization; concrete
//! factors make it a schedule. In this reproduction the canonical schedule
//! representation is [`crate::schedule::Schedule`]; this module provides
//! the sequence view of a schedule (the paper's Fig. 5(c)) used by reports,
//! code generation, and tests.

use serde::{Deserialize, Serialize};
use tensor_ir::IndexId;

/// One software primitive with its factors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwPrimitive {
    /// Split a loop into an outer tile loop and an inner (tensorized) loop.
    Split {
        /// The loop being split.
        index: IndexId,
        /// The outer trip count.
        outer: u64,
        /// The inner (tile) size.
        inner: u64,
    },
    /// Interchange the outer loops into the given order.
    Reorder {
        /// Outer loops, outermost first.
        order: Vec<IndexId>,
    },
    /// Fuse the `count` outermost loops into one (for launch overhead /
    /// parallelism bookkeeping).
    Fuse {
        /// How many outermost loops are fused.
        count: usize,
    },
    /// Mark the inner loops as the tensorized sub-workload executed by the
    /// hardware interface.
    Tensorize {
        /// The tensorized loops with their tile sizes.
        tiles: Vec<(IndexId, u64)>,
        /// The intrinsic name.
        intrinsic: String,
    },
}

impl std::fmt::Display for SwPrimitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwPrimitive::Split {
                index,
                outer,
                inner,
            } => {
                write!(f, "split({index} -> [{outer}, {inner}])")
            }
            SwPrimitive::Reorder { order } => {
                let names: Vec<String> = order.iter().map(|i| i.to_string()).collect();
                write!(f, "reorder({})", names.join(", "))
            }
            SwPrimitive::Fuse { count } => write!(f, "fuse(outer {count})"),
            SwPrimitive::Tensorize { tiles, intrinsic } => {
                let ts: Vec<String> = tiles.iter().map(|(i, t)| format!("{i}:{t}")).collect();
                write!(f, "tensorize[{intrinsic}]({})", ts.join(", "))
            }
        }
    }
}

/// A primitive sequence — the skeleton plus factors of one optimization.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrimitiveSequence {
    /// The primitives in application order.
    pub primitives: Vec<SwPrimitive>,
}

impl PrimitiveSequence {
    /// Number of primitives.
    pub fn len(&self) -> usize {
        self.primitives.len()
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.primitives.is_empty()
    }

    /// The skeleton: primitive names without factors (used to compare
    /// "combinations of the primitive sequence" during revision).
    pub fn skeleton(&self) -> Vec<&'static str> {
        self.primitives
            .iter()
            .map(|p| match p {
                SwPrimitive::Split { .. } => "split",
                SwPrimitive::Reorder { .. } => "reorder",
                SwPrimitive::Fuse { .. } => "fuse",
                SwPrimitive::Tensorize { .. } => "tensorize",
            })
            .collect()
    }
}

impl std::fmt::Display for PrimitiveSequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let items: Vec<String> = self.primitives.iter().map(|p| p.to_string()).collect();
        write!(f, "[{}]", items.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_paper_like() {
        let p = SwPrimitive::Split {
            index: IndexId(2),
            outer: 2,
            inner: 32,
        };
        assert_eq!(p.to_string(), "split(i2 -> [2, 32])");
        let t = SwPrimitive::Tensorize {
            tiles: vec![(IndexId(0), 16), (IndexId(1), 32)],
            intrinsic: "gemm".into(),
        };
        assert_eq!(t.to_string(), "tensorize[gemm](i0:16, i1:32)");
    }

    #[test]
    fn skeleton_names() {
        let seq = PrimitiveSequence {
            primitives: vec![
                SwPrimitive::Split {
                    index: IndexId(0),
                    outer: 2,
                    inner: 8,
                },
                SwPrimitive::Reorder {
                    order: vec![IndexId(0), IndexId(1)],
                },
                SwPrimitive::Fuse { count: 2 },
                SwPrimitive::Tensorize {
                    tiles: vec![],
                    intrinsic: "gemm".into(),
                },
            ],
        };
        assert_eq!(
            seq.skeleton(),
            vec!["split", "reorder", "fuse", "tensorize"]
        );
        assert_eq!(seq.len(), 4);
        assert!(!seq.is_empty());
    }

    #[test]
    fn sequence_display_joins() {
        let seq = PrimitiveSequence {
            primitives: vec![SwPrimitive::Fuse { count: 3 }],
        };
        assert_eq!(seq.to_string(), "[fuse(outer 3)]");
    }
}
