//! The heuristic candidate-pool step (§VI-B, Fig. 5(d)).
//!
//! "To identify valuable candidates, we measure and maintain the latency of
//! each candidate optimization p as l_p, and the lowest latency in history
//! is l*. Then, the value of p is measured by exp(−(l_p − l*)/l*). The
//! higher the value is, the better the candidate is. We choose the top-k
//! candidates as valuable candidates."

use accel_model::arch::AcceleratorConfig;
use accel_model::{CostBackend, Metrics};
use rand::Rng;
use runtime::WorkerPool;

use crate::lowering;
use crate::schedule::{Schedule, ScheduleContext};
use crate::SwError;

/// A candidate optimization with its measured metrics.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The schedule.
    pub schedule: Schedule,
    /// Its evaluated metrics.
    pub metrics: Metrics,
}

/// The candidate pool with the paper's value function.
#[derive(Debug, Clone)]
pub struct CandidatePool {
    candidates: Vec<Candidate>,
    best_latency: f64,
}

impl CandidatePool {
    /// Initializes the pool with `size` random valid schedules ("we
    /// initialize plenty of candidate optimizations ... by randomly
    /// generating primitive sequences and factors").
    ///
    /// # Errors
    /// Returns [`SwError::NoValidSchedule`] when no valid schedule is found
    /// within the sampling budget.
    pub fn initialize<R: Rng + ?Sized>(
        ctx: &ScheduleContext,
        cfg: &AcceleratorConfig,
        backend: &dyn CostBackend,
        size: usize,
        rng: &mut R,
    ) -> Result<Self, SwError> {
        Self::initialize_batched(ctx, cfg, backend, size, rng, &WorkerPool::serial())
    }

    /// [`CandidatePool::initialize`] with the schedule *evaluations* fanned
    /// out to a worker pool. Schedules are generated serially in chunks
    /// whose size depends only on `size` and the attempt budget — never on
    /// the worker count — so the candidate pool is identical at any
    /// parallelism.
    ///
    /// # Errors
    /// Returns [`SwError::NoValidSchedule`] when no valid schedule is found
    /// within the sampling budget.
    pub fn initialize_batched<R: Rng + ?Sized>(
        ctx: &ScheduleContext,
        cfg: &AcceleratorConfig,
        backend: &dyn CostBackend,
        size: usize,
        rng: &mut R,
        workers: &WorkerPool,
    ) -> Result<Self, SwError> {
        let mut pool = CandidatePool {
            candidates: Vec::new(),
            best_latency: f64::INFINITY,
        };
        let mut attempts = 0;
        let budget = size.max(1) * 60;
        while pool.candidates.len() < size && attempts < budget {
            let chunk = (size - pool.candidates.len()).max(1).min(budget - attempts);
            let schedules: Vec<Schedule> = (0..chunk).map(|_| ctx.random_schedule(rng)).collect();
            attempts += schedules.len();
            let outcomes = workers.map(&schedules, |_, s| {
                lowering::evaluate(s, ctx, cfg, backend).ok()
            });
            for (sched, metrics) in schedules.into_iter().zip(outcomes) {
                if let Some(metrics) = metrics {
                    if pool.candidates.len() < size {
                        pool.insert(Candidate {
                            schedule: sched,
                            metrics,
                        });
                    }
                }
            }
        }
        if pool.candidates.is_empty() {
            return Err(SwError::NoValidSchedule);
        }
        Ok(pool)
    }

    /// The paper's candidate value: `exp(−(l_p − l*)/l*)`, 1.0 for the
    /// incumbent best and decaying toward 0 for slower candidates.
    pub fn value(&self, c: &Candidate) -> f64 {
        let l = c.metrics.latency_cycles;
        (-(l - self.best_latency) / self.best_latency)
            .exp()
            .min(1.0)
    }

    /// Inserts a candidate and updates `l*`.
    pub fn insert(&mut self, c: Candidate) {
        self.best_latency = self.best_latency.min(c.metrics.latency_cycles);
        self.candidates.push(c);
    }

    /// Indices of the top-k candidates by value (descending).
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.candidates.len()).collect();
        idx.sort_by(|&a, &b| {
            self.value(&self.candidates[b])
                .partial_cmp(&self.value(&self.candidates[a]))
                .expect("values are finite")
        });
        idx.truncate(k);
        idx
    }

    /// Drops the lowest-value candidates beyond `max`.
    pub fn prune(&mut self, max: usize) {
        if self.candidates.len() <= max {
            return;
        }
        let keep = self.top_k(max);
        let mut kept: Vec<Candidate> = keep
            .into_iter()
            .map(|i| self.candidates[i].clone())
            .collect();
        std::mem::swap(&mut self.candidates, &mut kept);
    }

    /// The candidate with the lowest latency.
    ///
    /// # Panics
    /// Panics on an empty pool (pools are non-empty by construction).
    pub fn best(&self) -> &Candidate {
        self.candidates
            .iter()
            .min_by(|a, b| {
                a.metrics
                    .latency_cycles
                    .partial_cmp(&b.metrics.latency_cycles)
                    .expect("latencies are finite")
            })
            .expect("pool is non-empty")
    }

    /// The lowest latency seen so far (`l*`).
    pub fn best_latency(&self) -> f64 {
        self.best_latency
    }

    /// All candidates.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tensor_ir::intrinsics::IntrinsicKind;
    use tensor_ir::suites;

    fn setup() -> (
        ScheduleContext,
        AcceleratorConfig,
        accel_model::AnalyticBackend,
    ) {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        let wl = suites::gemm_workload("g", 256, 256, 256);
        let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
        (ctx, cfg, accel_model::AnalyticBackend::default())
    }

    #[test]
    fn initializes_requested_size() {
        let (ctx, cfg, model) = setup();
        let mut rng = SmallRng::seed_from_u64(0);
        let pool = CandidatePool::initialize(&ctx, &cfg, &model, 12, &mut rng).unwrap();
        assert_eq!(pool.len(), 12);
        assert!(!pool.is_empty());
    }

    #[test]
    fn best_candidate_has_value_one() {
        let (ctx, cfg, model) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        let pool = CandidatePool::initialize(&ctx, &cfg, &model, 10, &mut rng).unwrap();
        let best = pool.best();
        assert!((pool.value(best) - 1.0).abs() < 1e-12);
        assert_eq!(best.metrics.latency_cycles, pool.best_latency());
    }

    #[test]
    fn values_are_in_unit_interval_and_ordered() {
        let (ctx, cfg, model) = setup();
        let mut rng = SmallRng::seed_from_u64(2);
        let pool = CandidatePool::initialize(&ctx, &cfg, &model, 10, &mut rng).unwrap();
        for c in pool.candidates() {
            let v = pool.value(c);
            assert!((0.0..=1.0).contains(&v));
        }
        let top = pool.top_k(3);
        assert_eq!(top.len(), 3);
        let v0 = pool.value(&pool.candidates()[top[0]]);
        let v2 = pool.value(&pool.candidates()[top[2]]);
        assert!(v0 >= v2);
    }

    #[test]
    fn prune_keeps_best() {
        let (ctx, cfg, model) = setup();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut pool = CandidatePool::initialize(&ctx, &cfg, &model, 15, &mut rng).unwrap();
        let best_before = pool.best().metrics.latency_cycles;
        pool.prune(5);
        assert_eq!(pool.len(), 5);
        assert_eq!(pool.best().metrics.latency_cycles, best_before);
    }

    #[test]
    fn parallel_initialization_matches_serial() {
        let (ctx, cfg, model) = setup();
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut rng_b = SmallRng::seed_from_u64(9);
        let serial = CandidatePool::initialize_batched(
            &ctx,
            &cfg,
            &model,
            14,
            &mut rng_a,
            &WorkerPool::serial(),
        )
        .unwrap();
        let parallel = CandidatePool::initialize_batched(
            &ctx,
            &cfg,
            &model,
            14,
            &mut rng_b,
            &WorkerPool::new(4),
        )
        .unwrap();
        assert_eq!(serial.len(), parallel.len());
        assert_eq!(serial.best_latency(), parallel.best_latency());
        for (a, b) in serial.candidates().iter().zip(parallel.candidates()) {
            assert_eq!(a.metrics.latency_cycles, b.metrics.latency_cycles);
        }
    }

    #[test]
    fn fails_when_nothing_fits() {
        let (ctx, mut cfg, model) = setup();
        cfg.scratchpad_bytes = 64; // nothing fits
        let mut rng = SmallRng::seed_from_u64(4);
        let r = CandidatePool::initialize(&ctx, &cfg, &model, 5, &mut rng);
        assert_eq!(r.unwrap_err(), SwError::NoValidSchedule);
    }
}
