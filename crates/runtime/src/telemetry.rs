//! Out-of-band wall-clock telemetry: spans, counters, gauges, and
//! histograms for the whole engine stack.
//!
//! The co-design pipeline is instrumented at every layer — engine jobs,
//! pipeline phases, evaluation batches, backend tiers, GP fits, the memo
//! cache, the worker pool, and the job scheduler — through one shared
//! [`Telemetry`] handle:
//!
//! * **spans** — hierarchical timed sections keyed by a `/`-separated
//!   path (`"job/hw_dse/screen"`), aggregated per path (count, total,
//!   min, max) so hot paths stay bounded-memory;
//! * **counters / gauges** — named monotone sums and last-written values
//!   (campaign dedup rates, jobs executed, adaptive top-k state);
//! * **histograms** — power-of-two-bucketed nanosecond distributions
//!   (per-tier evaluation latency, GP fit/predict time, pool batch time,
//!   scheduler queue-wait);
//! * **cache scopes** — per-shard [`CacheStats`] for the engine's shared
//!   store (point-in-time) and the union of per-job caches (accumulated).
//!
//! # The side-channel contract
//!
//! Telemetry measures wall-clock time, and wall-clock time is
//! nondeterministic — so telemetry is strictly **write-only from the
//! computation's point of view**. Nothing read from this module may flow
//! into memo fingerprints, `RunStats`, event streams, or any persisted
//! image; enabling or disabling telemetry must never change a result
//! bit. The determinism suite pins this
//! (`telemetry_never_changes_results`), and `detlint` enforces it
//! statically: this file is the one sanctioned clock owner in
//! `detlint.toml`, so any `Instant::now`/`SystemTime::now` appearing
//! elsewhere fails the lint unless its site carries a written
//! rationale.
//!
//! # Cost model
//!
//! A disabled handle ([`Telemetry::disabled`], the default) holds no
//! registry: every recording call is a branch on `None` and returns
//! without reading the clock. An enabled handle records through relaxed
//! atomics (histograms, tier cells, pool counters) or short-lived mutexes
//! on cold paths (span table, counters), cheap enough to leave on for
//! every bench run.
//!
//! # Example
//!
//! ```
//! use runtime::Telemetry;
//!
//! let t = Telemetry::enabled();
//! {
//!     let _span = t.span("job/hw_dse");
//!     t.counter_add("batches", 1);
//! }
//! let snap = t.snapshot().unwrap();
//! assert_eq!(snap.spans[0].path, "job/hw_dse");
//! assert!(snap.to_json().contains("hasco-telemetry-v1"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cache::CacheStats;

/// Schema identifier stamped into every JSON document this module emits.
pub const TELEMETRY_SCHEMA: &str = "hasco-telemetry-v1";

/// Histogram bucket count: bucket `i` holds samples with
/// `ns <= 2^i`, so 48 buckets span sub-nanosecond to ~78 hours.
const HIST_BUCKETS: usize = 48;

/// A lock-free nanosecond histogram with power-of-two buckets.
#[derive(Debug)]
struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first sample.
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
        let idx = (64 - u64::leading_zeros(ns | 1) as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum_ns: self.sum.load(Ordering::Relaxed),
            min_ns: if count == 0 { 0 } else { min },
            max_ns: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (1u64 << i.min(63), n))
                })
                .collect(),
        }
    }
}

/// Point-in-time image of a [`Histogram`]: summary statistics plus the
/// non-empty power-of-two buckets as `(upper_bound_ns, count)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Non-empty buckets, ascending: each sample with `ns <= le_ns`
    /// (and above the previous bucket's bound) counts here.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .buckets
            .iter()
            .map(|(le, n)| format!("{{\"le_ns\":{le},\"count\":{n}}}"))
            .collect();
        format!(
            "{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum_ns,
            self.min_ns,
            self.max_ns,
            buckets.join(",")
        )
    }
}

/// Aggregated timing of one span path.
#[derive(Debug, Clone, Copy, Default)]
struct SpanCells {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// Per-backend-tier evaluation cells (atomics: recorded from worker
/// threads inside evaluation batches).
#[derive(Debug)]
struct TierCells {
    evals: AtomicU64,
    latency_ns: Histogram,
}

/// The shared metric store behind an enabled [`Telemetry`] handle.
#[derive(Debug)]
struct Registry {
    spans: Mutex<BTreeMap<String, SpanCells>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    pool_batches: AtomicU64,
    pool_items: AtomicU64,
    pool_steals: AtomicU64,
    pool_batch_items: Histogram,
    pool_batch_ns: Histogram,
    queue_wait_ns: Histogram,
    tiers: Mutex<BTreeMap<String, Arc<TierCells>>>,
    gp_fits: AtomicU64,
    gp_fit_ns: Histogram,
    gp_predicts: AtomicU64,
    gp_predict_ns: Histogram,
    caches: Mutex<BTreeMap<String, Vec<CacheStats>>>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            spans: Mutex::new(BTreeMap::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            pool_batches: AtomicU64::new(0),
            pool_items: AtomicU64::new(0),
            pool_steals: AtomicU64::new(0),
            pool_batch_items: Histogram::new(),
            pool_batch_ns: Histogram::new(),
            queue_wait_ns: Histogram::new(),
            tiers: Mutex::new(BTreeMap::new()),
            gp_fits: AtomicU64::new(0),
            gp_fit_ns: Histogram::new(),
            gp_predicts: AtomicU64::new(0),
            gp_predict_ns: Histogram::new(),
            caches: Mutex::new(BTreeMap::new()),
        }
    }
}

/// A cloneable recorder handle: either a shared registry (enabled) or a
/// zero-cost no-op (disabled, the default). Clones share the registry, so
/// one handle threaded through engine, runtime, backends, and bench
/// aggregates into a single snapshot.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A recording handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Registry::new())),
        }
    }

    /// A no-op handle: every recording call returns without touching the
    /// clock. This is the default.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a timed span; it records into `path`'s aggregate when the
    /// guard drops (or [`SpanGuard::finish`] is called). Disabled handles
    /// return an inert guard without reading the clock.
    pub fn span(&self, path: &str) -> SpanGuard {
        SpanGuard {
            inner: self
                .inner
                .as_ref()
                .map(|_| (self.clone(), path.to_string(), Instant::now())),
        }
    }

    /// Folds one elapsed duration into `path`'s span aggregate.
    pub fn record_span(&self, path: &str, elapsed: Duration) {
        let Some(reg) = &self.inner else { return };
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut spans = reg.spans.lock().expect("span table poisoned");
        let cells = spans.entry(path.to_string()).or_default();
        if cells.count == 0 {
            cells.min_ns = ns;
            cells.max_ns = ns;
        } else {
            cells.min_ns = cells.min_ns.min(ns);
            cells.max_ns = cells.max_ns.max(ns);
        }
        cells.count += 1;
        cells.total_ns += ns;
    }

    /// Adds `delta` to the named monotone counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let Some(reg) = &self.inner else { return };
        let mut counters = reg.counters.lock().expect("counter table poisoned");
        *counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge to its latest value.
    pub fn gauge_set(&self, name: &str, value: u64) {
        let Some(reg) = &self.inner else { return };
        let mut gauges = reg.gauges.lock().expect("gauge table poisoned");
        gauges.insert(name.to_string(), value);
    }

    /// A cheap per-tier recorder for the named cost-backend tier, safe to
    /// clone into worker closures (recording is atomic).
    pub fn tier(&self, name: &str) -> TierRecorder {
        TierRecorder {
            cells: self.inner.as_ref().map(|reg| {
                let mut tiers = reg.tiers.lock().expect("tier table poisoned");
                Arc::clone(tiers.entry(name.to_string()).or_insert_with(|| {
                    Arc::new(TierCells {
                        evals: AtomicU64::new(0),
                        latency_ns: Histogram::new(),
                    })
                }))
            }),
        }
    }

    /// Records one worker-pool batch: item count, steal operations it
    /// caused, and wall time.
    pub fn record_pool_batch(&self, items: u64, steals: u64, elapsed: Duration) {
        let Some(reg) = &self.inner else { return };
        reg.pool_batches.fetch_add(1, Ordering::Relaxed);
        reg.pool_items.fetch_add(items, Ordering::Relaxed);
        reg.pool_steals.fetch_add(steals, Ordering::Relaxed);
        reg.pool_batch_items.record(items);
        reg.pool_batch_ns.record(saturating_ns(elapsed));
    }

    /// Records how long a scheduled job waited in the queue before an
    /// executor picked it up.
    pub fn record_queue_wait(&self, waited: Duration) {
        if let Some(reg) = &self.inner {
            reg.queue_wait_ns.record(saturating_ns(waited));
        }
    }

    /// Records one Gaussian-process fit.
    pub fn record_gp_fit(&self, elapsed: Duration) {
        if let Some(reg) = &self.inner {
            reg.gp_fits.fetch_add(1, Ordering::Relaxed);
            reg.gp_fit_ns.record(saturating_ns(elapsed));
        }
    }

    /// Records one Gaussian-process posterior prediction pass.
    pub fn record_gp_predict(&self, elapsed: Duration) {
        if let Some(reg) = &self.inner {
            reg.gp_predicts.fetch_add(1, Ordering::Relaxed);
            reg.gp_predict_ns.record(saturating_ns(elapsed));
        }
    }

    /// Accumulates per-shard cache counters into the named scope
    /// (element-wise sum) — for per-job caches, whose lifetimes end with
    /// the job.
    pub fn add_cache_shards(&self, scope: &str, shards: &[CacheStats]) {
        let Some(reg) = &self.inner else { return };
        let mut caches = reg.caches.lock().expect("cache table poisoned");
        let acc = caches.entry(scope.to_string()).or_default();
        acc.resize(acc.len().max(shards.len()), CacheStats::default());
        for (a, s) in acc.iter_mut().zip(shards) {
            a.hits += s.hits;
            a.misses += s.misses;
            a.inserts += s.inserts;
            a.evictions += s.evictions;
        }
    }

    /// Replaces the named scope with a point-in-time per-shard image —
    /// for long-lived caches (the engine's shared store) whose counters
    /// are already cumulative.
    pub fn set_cache_shards(&self, scope: &str, shards: &[CacheStats]) {
        let Some(reg) = &self.inner else { return };
        let mut caches = reg.caches.lock().expect("cache table poisoned");
        caches.insert(scope.to_string(), shards.to_vec());
    }

    /// Snapshots every metric into a plain-data document (`None` when
    /// disabled).
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        let reg = self.inner.as_ref()?;
        let spans = reg
            .spans
            .lock()
            .expect("span table poisoned")
            .iter()
            .map(|(path, c)| SpanStat {
                path: path.clone(),
                count: c.count,
                total_ns: c.total_ns,
                min_ns: c.min_ns,
                max_ns: c.max_ns,
            })
            .collect();
        let counters = reg
            .counters
            .lock()
            .expect("counter table poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let gauges = reg
            .gauges
            .lock()
            .expect("gauge table poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let tiers = reg
            .tiers
            .lock()
            .expect("tier table poisoned")
            .iter()
            .map(|(name, cells)| TierStat {
                name: name.clone(),
                evals: cells.evals.load(Ordering::Relaxed),
                latency_ns: cells.latency_ns.snapshot(),
            })
            .collect();
        let caches = reg
            .caches
            .lock()
            .expect("cache table poisoned")
            .iter()
            .map(|(scope, shards)| CacheScopeStat {
                scope: scope.clone(),
                shards: shards.clone(),
            })
            .collect();
        Some(TelemetrySnapshot {
            schema: TELEMETRY_SCHEMA.to_string(),
            spans,
            counters,
            gauges,
            pool: PoolTelemetry {
                batches: reg.pool_batches.load(Ordering::Relaxed),
                items: reg.pool_items.load(Ordering::Relaxed),
                steals: reg.pool_steals.load(Ordering::Relaxed),
                batch_items: reg.pool_batch_items.snapshot(),
                batch_ns: reg.pool_batch_ns.snapshot(),
            },
            queue_wait_ns: reg.queue_wait_ns.snapshot(),
            tiers,
            gp: GpStat {
                fits: reg.gp_fits.load(Ordering::Relaxed),
                fit_ns: reg.gp_fit_ns.snapshot(),
                predicts: reg.gp_predicts.load(Ordering::Relaxed),
                predict_ns: reg.gp_predict_ns.snapshot(),
            },
            caches,
        })
    }
}

fn saturating_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// RAII guard of an open [`Telemetry::span`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(Telemetry, String, Instant)>,
}

impl SpanGuard {
    /// Closes the span now and returns its elapsed wall time
    /// (`Duration::ZERO` for a disabled handle's guard).
    pub fn finish(mut self) -> Duration {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> Duration {
        match self.inner.take() {
            Some((t, path, start)) => {
                let elapsed = start.elapsed();
                t.record_span(&path, elapsed);
                elapsed
            }
            None => Duration::ZERO,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// A cloneable per-tier evaluation recorder (see [`Telemetry::tier`]).
#[derive(Debug, Clone, Default)]
pub struct TierRecorder {
    cells: Option<Arc<TierCells>>,
}

impl TierRecorder {
    /// Records one evaluation of this tier.
    pub fn record(&self, elapsed: Duration) {
        if let Some(cells) = &self.cells {
            cells.evals.fetch_add(1, Ordering::Relaxed);
            cells.latency_ns.record(saturating_ns(elapsed));
        }
    }

    /// Runs `f`, recording its wall time as one evaluation. Disabled
    /// recorders run `f` without reading the clock.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.cells.is_none() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }
}

/// Aggregate of one span path in a snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// `/`-separated hierarchical path, e.g. `"job/hw_dse/screen"`.
    pub path: String,
    /// Times the span was recorded.
    pub count: u64,
    /// Total nanoseconds across all recordings.
    pub total_ns: u64,
    /// Shortest recording.
    pub min_ns: u64,
    /// Longest recording.
    pub max_ns: u64,
}

/// Per-backend-tier evaluation statistics in a snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierStat {
    /// Backend name as reported by `CostBackend::name`.
    pub name: String,
    /// Evaluations recorded against this tier.
    pub evals: u64,
    /// Latency distribution of those evaluations.
    pub latency_ns: HistogramSnapshot,
}

/// Worker-pool scheduling statistics in a snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolTelemetry {
    /// Batches dispatched.
    pub batches: u64,
    /// Items evaluated across batches.
    pub items: u64,
    /// Steal operations.
    pub steals: u64,
    /// Batch-size distribution (item counts, not nanoseconds).
    pub batch_items: HistogramSnapshot,
    /// Batch wall-time distribution.
    pub batch_ns: HistogramSnapshot,
}

/// Gaussian-process timing statistics in a snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GpStat {
    /// Full surrogate refits (each spans the CV folds plus final fit).
    pub fits: u64,
    /// Fit wall-time distribution.
    pub fit_ns: HistogramSnapshot,
    /// Posterior prediction passes.
    pub predicts: u64,
    /// Prediction wall-time distribution.
    pub predict_ns: HistogramSnapshot,
}

/// Per-shard cache counters for one cache scope.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheScopeStat {
    /// Scope name (`"store"` for the engine's shared cache, `"jobs"` for
    /// the accumulated per-job caches).
    pub scope: String,
    /// One entry per shard, in shard order.
    pub shards: Vec<CacheStats>,
}

impl CacheScopeStat {
    /// Element-wise sum over shards.
    pub fn total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.hits += s.hits;
            total.misses += s.misses;
            total.inserts += s.inserts;
            total.evictions += s.evictions;
        }
        total
    }
}

/// A point-in-time plain-data image of every metric in a registry,
/// serializable to versioned JSON ([`TelemetrySnapshot::to_json`]) and a
/// human summary block ([`TelemetrySnapshot::render`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Schema identifier ([`TELEMETRY_SCHEMA`]).
    pub schema: String,
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Monotone counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-written gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Worker-pool activity.
    pub pool: PoolTelemetry,
    /// Scheduler queue-wait distribution.
    pub queue_wait_ns: HistogramSnapshot,
    /// Per-backend-tier evaluation statistics, sorted by tier name.
    pub tiers: Vec<TierStat>,
    /// Gaussian-process timing.
    pub gp: GpStat,
    /// Per-shard cache counters, one entry per scope.
    pub caches: Vec<CacheScopeStat>,
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cache_stats_json(s: &CacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{}}}",
        s.hits, s.misses, s.inserts, s.evictions
    )
}

/// Formats nanoseconds human-readably (`1.23ms`, `4.56s`, …).
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

impl TelemetrySnapshot {
    /// Serializes the snapshot as a versioned JSON document (schema
    /// `hasco-telemetry-v1`; the layout is documented in the repository
    /// README's Observability section).
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"path\":\"{}\",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                    json_escape(&s.path),
                    s.count,
                    s.total_ns,
                    s.min_ns,
                    s.max_ns
                )
            })
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{{\"name\":\"{}\",\"value\":{v}}}", json_escape(k)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{{\"name\":\"{}\",\"value\":{v}}}", json_escape(k)))
            .collect();
        let tiers: Vec<String> = self
            .tiers
            .iter()
            .map(|t| {
                format!(
                    "{{\"name\":\"{}\",\"evals\":{},\"latency_ns\":{}}}",
                    json_escape(&t.name),
                    t.evals,
                    t.latency_ns.to_json()
                )
            })
            .collect();
        let caches: Vec<String> = self
            .caches
            .iter()
            .map(|c| {
                let shards: Vec<String> = c.shards.iter().map(cache_stats_json).collect();
                format!(
                    "{{\"scope\":\"{}\",\"total\":{},\"shards\":[{}]}}",
                    json_escape(&c.scope),
                    cache_stats_json(&c.total()),
                    shards.join(",")
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"schema\":\"{}\",",
                "\"spans\":[{}],",
                "\"counters\":[{}],",
                "\"gauges\":[{}],",
                "\"pool\":{{\"batches\":{},\"items\":{},\"steals\":{},",
                "\"batch_items\":{},\"batch_ns\":{}}},",
                "\"jobs\":{{\"queue_wait_ns\":{}}},",
                "\"tiers\":[{}],",
                "\"gp\":{{\"fits\":{},\"fit_ns\":{},\"predicts\":{},\"predict_ns\":{}}},",
                "\"caches\":[{}]}}"
            ),
            json_escape(&self.schema),
            spans.join(","),
            counters.join(","),
            gauges.join(","),
            self.pool.batches,
            self.pool.items,
            self.pool.steals,
            self.pool.batch_items.to_json(),
            self.pool.batch_ns.to_json(),
            self.queue_wait_ns.to_json(),
            tiers.join(","),
            self.gp.fits,
            self.gp.fit_ns.to_json(),
            self.gp.predicts,
            self.gp.predict_ns.to_json(),
            caches.join(",")
        )
    }

    /// Renders the snapshot as a compact human summary block.
    pub fn render(&self) -> String {
        let mut out = String::from("== telemetry ==\n");
        for s in &self.spans {
            out.push_str(&format!(
                "span  {:<28} {:>5}x  total {:>9}  mean {:>9}\n",
                s.path,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.total_ns.checked_div(s.count).unwrap_or(0)),
            ));
        }
        out.push_str(&format!(
            "pool  {} batches / {} items / {} steals (mean batch {})\n",
            self.pool.batches,
            self.pool.items,
            self.pool.steals,
            fmt_ns(self.pool.batch_ns.mean_ns()),
        ));
        if self.queue_wait_ns.count > 0 {
            out.push_str(&format!(
                "jobs  {} queued (mean wait {}, max {})\n",
                self.queue_wait_ns.count,
                fmt_ns(self.queue_wait_ns.mean_ns()),
                fmt_ns(self.queue_wait_ns.max_ns),
            ));
        }
        for t in &self.tiers {
            out.push_str(&format!(
                "tier  {:<28} {:>7} evals  mean {:>9}\n",
                t.name,
                t.evals,
                fmt_ns(t.latency_ns.mean_ns()),
            ));
        }
        if self.gp.fits > 0 || self.gp.predicts > 0 {
            out.push_str(&format!(
                "gp    {} fits (mean {}) / {} predicts (mean {})\n",
                self.gp.fits,
                fmt_ns(self.gp.fit_ns.mean_ns()),
                self.gp.predicts,
                fmt_ns(self.gp.predict_ns.mean_ns()),
            ));
        }
        for c in &self.caches {
            let total = c.total();
            out.push_str(&format!(
                "cache {:<28} {} hits / {} misses ({:.1}% hit rate) over {} shards\n",
                c.scope,
                total.hits,
                total.misses,
                total.hit_rate() * 100.0,
                c.shards.len(),
            ));
        }
        for (name, value) in &self.counters {
            out.push_str(&format!("count {name:<28} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge {name:<28} {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        {
            let _span = t.span("job");
        }
        t.counter_add("c", 1);
        t.gauge_set("g", 2);
        t.tier("analytic").record(Duration::from_micros(5));
        t.record_pool_batch(4, 1, Duration::from_micros(9));
        t.record_queue_wait(Duration::from_micros(1));
        t.record_gp_fit(Duration::from_micros(1));
        t.record_gp_predict(Duration::from_micros(1));
        t.add_cache_shards("jobs", &[CacheStats::default()]);
        assert!(t.snapshot().is_none());
        assert_eq!(t.span("x").finish(), Duration::ZERO);
    }

    #[test]
    fn spans_aggregate_per_path() {
        let t = Telemetry::enabled();
        t.record_span("job", Duration::from_nanos(100));
        t.record_span("job", Duration::from_nanos(300));
        t.record_span("job/hw_dse", Duration::from_nanos(50));
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.spans.len(), 2);
        let job = &snap.spans[0];
        assert_eq!(job.path, "job");
        assert_eq!(job.count, 2);
        assert_eq!(job.total_ns, 400);
        assert_eq!(job.min_ns, 100);
        assert_eq!(job.max_ns, 300);
    }

    #[test]
    fn span_guard_records_and_reports_elapsed() {
        let t = Telemetry::enabled();
        let elapsed = t.span("bench").finish();
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.spans[0].count, 1);
        assert_eq!(snap.spans[0].total_ns, elapsed.as_nanos() as u64);
        // Dropping (not finishing) records too.
        {
            let _g = t.span("bench");
        }
        assert_eq!(t.snapshot().unwrap().spans[0].count, 2);
    }

    #[test]
    fn counters_and_gauges() {
        let t = Telemetry::enabled();
        t.counter_add("campaign.scenarios", 10);
        t.counter_add("campaign.scenarios", 2);
        t.gauge_set("topk", 4);
        t.gauge_set("topk", 1);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counters, vec![("campaign.scenarios".to_string(), 12)]);
        assert_eq!(snap.gauges, vec![("topk".to_string(), 1)]);
    }

    #[test]
    fn tier_recorders_share_cells_per_name() {
        let t = Telemetry::enabled();
        let a = t.tier("analytic");
        let b = t.tier("analytic");
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(30));
        let out = t.tier("sim").time(|| 7);
        assert_eq!(out, 7);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.tiers.len(), 2);
        assert_eq!(snap.tiers[0].name, "analytic");
        assert_eq!(snap.tiers[0].evals, 2);
        assert_eq!(snap.tiers[0].latency_ns.sum_ns, 40);
        assert_eq!(snap.tiers[1].name, "sim");
        assert_eq!(snap.tiers[1].evals, 1);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.min_ns, 0);
        assert_eq!(snap.max_ns, 1024);
        // ns=0,1 -> le 2; ns=2 -> le 4 (bucket i holds ns<=2^i with
        // i = bit length); ns=3 -> le 4; ns=1024 -> le 2048.
        assert_eq!(snap.buckets, vec![(2, 2), (4, 2), (2048, 1)]);
        let total: u64 = snap.buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, snap.count);
    }

    #[test]
    fn cache_scopes_accumulate_or_replace() {
        let t = Telemetry::enabled();
        let one = CacheStats {
            hits: 1,
            misses: 2,
            inserts: 3,
            evictions: 4,
        };
        t.add_cache_shards("jobs", &[one, one]);
        t.add_cache_shards("jobs", &[one]);
        t.set_cache_shards("store", &[one]);
        t.set_cache_shards("store", &[one, one]);
        let snap = t.snapshot().unwrap();
        let jobs = snap.caches.iter().find(|c| c.scope == "jobs").unwrap();
        assert_eq!(jobs.shards.len(), 2);
        assert_eq!(jobs.shards[0].hits, 2);
        assert_eq!(jobs.shards[1].hits, 1);
        assert_eq!(jobs.total().misses, 6);
        let store = snap.caches.iter().find(|c| c.scope == "store").unwrap();
        assert_eq!(store.shards.len(), 2);
        assert_eq!(store.total().hits, 2);
    }

    #[test]
    fn json_document_has_schema_and_sections() {
        let t = Telemetry::enabled();
        t.span("job").finish();
        t.counter_add("c", 1);
        t.gauge_set("g", 9);
        t.tier("analytic").record(Duration::from_micros(3));
        t.record_pool_batch(8, 2, Duration::from_micros(40));
        t.record_queue_wait(Duration::from_micros(7));
        t.record_gp_fit(Duration::from_millis(1));
        t.record_gp_predict(Duration::from_micros(2));
        t.set_cache_shards("store", &[CacheStats::default()]);
        let json = t.snapshot().unwrap().to_json();
        for key in [
            "\"schema\":\"hasco-telemetry-v1\"",
            "\"spans\":[",
            "\"counters\":[",
            "\"gauges\":[",
            "\"pool\":{",
            "\"queue_wait_ns\":{",
            "\"tiers\":[",
            "\"gp\":{",
            "\"caches\":[",
            "\"le_ns\":",
            "\"shards\":[",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces / brackets: cheap structural sanity.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn render_mentions_every_section() {
        let t = Telemetry::enabled();
        t.span("job").finish();
        t.tier("analytic").record(Duration::from_micros(3));
        t.record_pool_batch(8, 2, Duration::from_micros(40));
        t.record_queue_wait(Duration::from_micros(7));
        t.record_gp_fit(Duration::from_millis(1));
        t.add_cache_shards("jobs", &[CacheStats::default()]);
        t.counter_add("campaign.scenarios", 12);
        t.gauge_set("topk", 3);
        let text = t.snapshot().unwrap().render();
        for needle in [
            "== telemetry ==",
            "span  job",
            "pool  1 batches",
            "jobs  1 queued",
            "tier  analytic",
            "gp    1 fits",
            "cache jobs",
            "count campaign.scenarios",
            "gauge topk",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::enabled();
        let clone = t.clone();
        clone.counter_add("c", 5);
        assert_eq!(t.snapshot().unwrap().counters[0].1, 5);
    }
}
