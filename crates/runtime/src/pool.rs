//! A fixed-size, order-preserving worker pool with work-stealing.
//!
//! [`WorkerPool::map`] fans the items of a batch out to `threads` OS
//! threads and writes each result into a slot addressed by the item's
//! submission index, so the returned vector is always in input order
//! regardless of which worker finished first or last. Workers are spawned
//! per batch inside [`std::thread::scope`]: that keeps borrowed problem
//! state (generators, workload slices, cost models) usable from worker
//! closures without `unsafe` lifetime juggling, while the pool size stays
//! fixed for the life of the pool.
//!
//! Two scheduling strategies are available:
//!
//! * **work-stealing** (default) — each worker owns a contiguous chunk of
//!   the batch and pops from its front; a worker that drains its chunk
//!   steals the back half of the largest work left on a peer. Chunked
//!   ownership keeps the common case contention-free, and stealing keeps
//!   every core busy when per-item cost is wildly uneven (a trace-sim
//!   evaluation can cost 100x an analytic one);
//! * **shared-counter** ([`WorkerPool::without_stealing`]) — all workers
//!   pull single items off one atomic index, the PR 1 behavior, kept as
//!   the reference scheduler.
//!
//! Either way the result is `[f(0, &items[0]), f(1, &items[1]), ...]`:
//! scheduling moves work between threads, never between result slots, so
//! thread count and stealing change wall-clock time only.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::telemetry::Telemetry;

/// Point-in-time scheduling counters of a pool (shared by clones).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Batches dispatched through [`WorkerPool::map`].
    pub batches: u64,
    /// Items evaluated across all batches.
    pub items: u64,
    /// Successful steal operations (a worker adopting part of a peer's
    /// remaining chunk). Always 0 with stealing disabled or serial pools.
    pub steals: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    batches: AtomicU64,
    items: AtomicU64,
    steals: AtomicU64,
}

/// A fixed-size pool of evaluation workers.
///
/// Clones share the scheduling counters ([`WorkerPool::stats`]), so a pool
/// handed to several evaluation engines reports aggregate activity.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
    stealing: bool,
    stats: Arc<StatCells>,
    /// Out-of-band batch observer (no-op by default): batch sizes, wall
    /// time, and steal deltas. Never feeds back into scheduling.
    telemetry: Telemetry,
}

impl WorkerPool {
    /// Creates a pool with a fixed worker count (minimum 1) and
    /// work-stealing enabled.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
            stealing: true,
            stats: Arc::new(StatCells::default()),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Creates a single-threaded pool — the serial degenerate case every
    /// parallel code path must reduce to.
    pub fn serial() -> Self {
        WorkerPool::new(1)
    }

    /// Disables work-stealing: workers pull single items off a shared
    /// atomic counter instead of owning chunks. Results are identical
    /// either way; this exists as the reference scheduler and for
    /// scheduling experiments.
    pub fn without_stealing(mut self) -> Self {
        self.stealing = false;
        self
    }

    /// Sets the work-stealing flag explicitly.
    pub fn with_stealing(mut self, stealing: bool) -> Self {
        self.stealing = stealing;
        self
    }

    /// Attaches a telemetry handle; every [`WorkerPool::map`] call then
    /// records its batch size, wall time, and steal delta. Telemetry is a
    /// wall-clock side channel — it observes scheduling and never
    /// influences it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The fixed worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when work-stealing is enabled.
    pub fn stealing(&self) -> bool {
        self.stealing
    }

    /// True when the pool executes inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Snapshot of the scheduling counters (shared across clones).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            batches: self.stats.batches.load(Ordering::Relaxed),
            items: self.stats.items.load(Ordering::Relaxed),
            steals: self.stats.steals.load(Ordering::Relaxed),
        }
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**. `f` receives `(index, &item)`.
    ///
    /// With `threads <= 1` (or a batch of one) this runs inline on the
    /// calling thread; otherwise up to `threads` workers split the batch.
    /// Either way the output is `[f(0, &items[0]), f(1, &items[1]), ...]`
    /// — thread count and scheduling change wall-clock time, not results.
    ///
    /// # Panics
    /// Re-raises the first worker panic on the calling thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .items
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        // Telemetry observes the batch from outside the dispatch: the
        // clock is only read when a recorder is attached.
        let observed = self
            .telemetry
            .is_enabled()
            // detlint-allow(wall-clock): per-batch steal/latency telemetry, read only when a recorder is enabled; never reaches results
            .then(|| (Instant::now(), self.stats.steals.load(Ordering::Relaxed)));
        let out = self.dispatch(items, f);
        if let Some((start, steals_before)) = observed {
            let steals = self
                .stats
                .steals
                .load(Ordering::Relaxed)
                .saturating_sub(steals_before);
            self.telemetry
                .record_pool_batch(items.len() as u64, steals, start.elapsed());
        }
        out
    }

    fn dispatch<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.is_serial() || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let workers = self.threads.min(items.len());
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let record_panic = |payload| {
            panic_slot
                .lock()
                .expect("panic slot poisoned")
                .get_or_insert(payload);
        };

        if self.stealing {
            self.map_stealing(items, &f, workers, &slots, &record_panic);
        } else {
            Self::map_shared_counter(items, &f, workers, &slots, &record_panic);
        }

        if let Some(payload) = panic_slot.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index was claimed exactly once")
            })
            .collect()
    }

    /// The PR 1 scheduler: one shared atomic work index.
    fn map_shared_counter<T, R, F>(
        items: &[T],
        f: &F,
        workers: usize,
        slots: &[Mutex<Option<R>>],
        record_panic: &(dyn Fn(Box<dyn std::any::Any + Send>) + Sync),
    ) where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                        Ok(r) => *slots[i].lock().expect("result slot poisoned") = Some(r),
                        Err(payload) => {
                            record_panic(payload);
                            // Drain the remaining work so peers exit fast.
                            next.store(items.len(), Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
    }

    /// The work-stealing scheduler: chunked ownership, steal-half-from-
    /// the-back. Workers only ever *remove* work from queues, so a worker
    /// that finds every queue empty can exit — any in-flight item already
    /// belongs to the thread running it.
    fn map_stealing<T, R, F>(
        &self,
        items: &[T],
        f: &F,
        workers: usize,
        slots: &[Mutex<Option<R>>],
        record_panic: &(dyn Fn(Box<dyn std::any::Any + Send>) + Sync),
    ) where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        // Contiguous initial chunks: worker w owns [w*len/n, (w+1)*len/n).
        let queues: Vec<Mutex<(usize, usize)>> = (0..workers)
            .map(|w| {
                let start = w * items.len() / workers;
                let end = (w + 1) * items.len() / workers;
                Mutex::new((start, end))
            })
            .collect();
        let abort = AtomicBool::new(false);
        let pop_front = |w: usize| -> Option<usize> {
            let mut q = queues[w].lock().expect("work queue poisoned");
            if q.0 < q.1 {
                let i = q.0;
                q.0 += 1;
                Some(i)
            } else {
                None
            }
        };
        // Takes the back half of a victim's remaining range (without
        // holding two queue locks at once — the stolen range is installed
        // into the thief's queue after the victim lock is released).
        let steal_from_peers = |w: usize| -> Option<(usize, usize)> {
            for step in 1..workers {
                let v = (w + step) % workers;
                let mut q = queues[v].lock().expect("work queue poisoned");
                let len = q.1 - q.0;
                if len > 0 {
                    let take = len.div_ceil(2);
                    let stolen = (q.1 - take, q.1);
                    q.1 -= take;
                    drop(q);
                    self.stats.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(stolen);
                }
            }
            None
        };

        std::thread::scope(|scope| {
            for w in 0..workers {
                let abort = &abort;
                let queues = &queues;
                scope.spawn(move || loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = match pop_front(w) {
                        Some(i) => i,
                        None => match steal_from_peers(w) {
                            Some((start, end)) => {
                                *queues[w].lock().expect("work queue poisoned") = (start + 1, end);
                                start
                            }
                            // Every queue is empty: no unclaimed work left.
                            None => break,
                        },
                    };
                    match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                        Ok(r) => *slots[i].lock().expect("result slot poisoned") = Some(r),
                        Err(payload) => {
                            record_panic(payload);
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_submission_order() {
        for pool in [WorkerPool::new(4), WorkerPool::new(4).without_stealing()] {
            let items: Vec<u64> = (0..100).collect();
            // Uneven per-item work so completion order scrambles.
            let out = pool.map(&items, |_, &x| {
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree_with_and_without_stealing() {
        let items: Vec<u64> = (0..64).collect();
        let f = |i: usize, x: &u64| (i as u64).wrapping_mul(31).wrapping_add(*x);
        let serial = WorkerPool::serial().map(&items, f);
        for threads in [2, 4, 8] {
            for stealing in [true, false] {
                let parallel = WorkerPool::new(threads)
                    .with_stealing(stealing)
                    .map(&items, f);
                assert_eq!(serial, parallel, "threads={threads} stealing={stealing}");
            }
        }
    }

    #[test]
    fn every_item_is_evaluated_exactly_once() {
        for stealing in [true, false] {
            let calls = AtomicUsize::new(0);
            let items: Vec<usize> = (0..257).collect();
            let out = WorkerPool::new(3)
                .with_stealing(stealing)
                .map(&items, |i, _| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    i
                });
            assert_eq!(calls.load(Ordering::Relaxed), items.len());
            assert_eq!(out, items);
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.map(&[] as &[u64], |_, &x| x), Vec::<u64>::new());
        assert_eq!(pool.map(&[7u64], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert!(WorkerPool::new(0).is_serial());
    }

    #[test]
    fn worker_panic_propagates() {
        for stealing in [true, false] {
            let pool = WorkerPool::new(2).with_stealing(stealing);
            let items: Vec<u64> = (0..8).collect();
            let result = std::panic::catch_unwind(|| {
                pool.map(&items, |_, &x| {
                    if x == 3 {
                        panic!("boom");
                    }
                    x
                })
            });
            assert!(result.is_err(), "stealing={stealing}");
        }
    }

    #[test]
    fn uneven_work_triggers_steals() {
        // Front-loaded work: worker 0's chunk takes far longer than the
        // others', so drained peers must steal from it.
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..64).collect();
        let out = pool.map(&items, |i, &x| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
        assert!(
            pool.stats().steals > 0,
            "expected steals on a front-loaded batch: {:?}",
            pool.stats()
        );
    }

    #[test]
    fn stats_are_shared_across_clones() {
        let pool = WorkerPool::new(2);
        let clone = pool.clone();
        let items: Vec<u64> = (0..10).collect();
        let _ = clone.map(&items, |_, &x| x);
        let s = pool.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.items, 10);
    }

    #[test]
    fn stealing_flag_is_reported() {
        assert!(WorkerPool::new(4).stealing());
        assert!(!WorkerPool::new(4).without_stealing().stealing());
    }

    #[test]
    fn telemetry_observes_batches_without_changing_results() {
        let telemetry = Telemetry::enabled();
        let plain = WorkerPool::new(3);
        let observed = WorkerPool::new(3).with_telemetry(telemetry.clone());
        let items: Vec<u64> = (0..32).collect();
        let f = |i: usize, x: &u64| (i as u64) * 10 + x;
        assert_eq!(plain.map(&items, f), observed.map(&items, f));
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.pool.batches, 1);
        assert_eq!(snap.pool.items, 32);
        assert_eq!(snap.pool.batch_ns.count, 1);
        assert_eq!(snap.pool.batch_items.max_ns, 32);
    }
}
