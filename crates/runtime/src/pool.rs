//! A fixed-size, order-preserving worker pool.
//!
//! [`WorkerPool::map`] fans the items of a batch out to `threads` OS
//! threads through a shared atomic work index and writes each result into
//! a slot addressed by the item's submission index, so the returned vector
//! is always in input order regardless of which worker finished first or
//! last. Workers are spawned per batch inside [`std::thread::scope`]: that
//! keeps borrowed problem state (generators, workload slices, cost models)
//! usable from worker closures without `unsafe` lifetime juggling, while
//! the pool size stays fixed for the life of the pool.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-size pool of evaluation workers.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with a fixed worker count (minimum 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// Creates a single-threaded pool — the serial degenerate case every
    /// parallel code path must reduce to.
    pub fn serial() -> Self {
        WorkerPool { threads: 1 }
    }

    /// The fixed worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when the pool executes inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**. `f` receives `(index, &item)`.
    ///
    /// With `threads <= 1` (or a batch of one) this runs inline on the
    /// calling thread; otherwise up to `threads` workers pull items off a
    /// shared counter. Either way the output is `[f(0, &items[0]),
    /// f(1, &items[1]), ...]` — thread count changes wall-clock time, not
    /// results.
    ///
    /// # Panics
    /// Re-raises the first worker panic on the calling thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.is_serial() || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(items.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                        Ok(r) => *slots[i].lock().expect("result slot poisoned") = Some(r),
                        Err(payload) => {
                            panic_slot
                                .lock()
                                .expect("panic slot poisoned")
                                .get_or_insert(payload);
                            // Drain the remaining work so peers exit fast.
                            next.store(items.len(), Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });

        if let Some(payload) = panic_slot.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index was claimed exactly once")
            })
            .collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_submission_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..100).collect();
        // Uneven per-item work so completion order scrambles.
        let out = pool.map(&items, |_, &x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..64).collect();
        let f = |i: usize, x: &u64| (i as u64).wrapping_mul(31).wrapping_add(*x);
        let serial = WorkerPool::serial().map(&items, f);
        let parallel = WorkerPool::new(8).map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_item_is_evaluated_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = WorkerPool::new(3).map(&items, |i, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.map(&[] as &[u64], |_, &x| x), Vec::<u64>::new());
        assert_eq!(pool.map(&[7u64], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert!(WorkerPool::new(0).is_serial());
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = WorkerPool::new(2);
        let items: Vec<u64> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            pool.map(&items, |_, &x| {
                if x == 3 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
