//! Shared persistence machinery for warm-state images and wire frames.
//!
//! Two kinds of warm state survive engine restarts: the memo cache
//! ([`crate::MemoCache`]'s own format, which predates this module) and the
//! surrogate-registry store. The network layer (`crates/net`) speaks the
//! same framing over sockets. All of them want the same plumbing:
//!
//! * **atomic replacement** ([`write_atomic`]) — bytes land in a uniquely
//!   named temp file in the target directory, then rename into place, so a
//!   crash mid-save or a concurrent saver never leaves a torn image;
//! * **checksummed framing** ([`write_frame`] / [`read_frame`]) — an
//!   8-byte magic (carrying a format version), a little-endian `u64`
//!   payload length, the payload, and a trailing fingerprint of the
//!   payload, so any corruption is detected instead of decoded. The
//!   streaming forms work over any `io::Read` / `io::Write` (a socket, a
//!   file, an in-memory buffer); [`frame`] / [`parse_frame`] are the
//!   whole-buffer wrappers;
//! * **tolerant loading** ([`load_frame`]) — a missing file or a corrupt
//!   image is the expected cold-start case (`Ok(None)`), while real I/O
//!   failures (permissions, a directory at the path) stay errors.

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Frame overhead in bytes: magic (8) + payload length (8) + checksum (8).
const FRAME_OVERHEAD: usize = 24;

/// Writes `image` to `path` atomically: the bytes land in a uniquely
/// named temp file in the same directory, then rename into place. A crash
/// mid-write leaves the previous image intact, and two concurrent savers
/// each publish a complete (if last-writer-wins) file — never a torn one.
///
/// # Errors
/// Propagates I/O errors from writing the temp file or renaming it into
/// place.
pub fn write_atomic(path: &Path, image: &[u8]) -> std::io::Result<()> {
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "image".into());
    let tmp = dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        // detlint-allow(atomics): process-local uniqueness counter for temp-file names; never persisted, never ordered
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::write(&tmp, image)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

fn checksum(payload: &[u8]) -> u64 {
    let mut fp = crate::Fingerprinter::new();
    fp.write_bytes(payload);
    fp.finish().0
}

/// Writes one checksummed frame — `magic ++ len ++ payload ++
/// fingerprint(payload)` — to any `io::Write` (a socket, a file, a
/// `Vec<u8>`). The length prefix makes frames self-delimiting, so a
/// stream can carry many of them back to back.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_frame<W: Write>(w: &mut W, magic: &[u8; 8], payload: &[u8]) -> io::Result<()> {
    w.write_all(magic)?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&checksum(payload).to_le_bytes())?;
    w.flush()
}

/// Reads one checksummed frame from any `io::Read`.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before the first
/// magic byte) — the "no more frames" case. A frame that *starts* but
/// doesn't check out is an error: `UnexpectedEof` for truncation
/// mid-frame, `InvalidData` for a wrong magic, a length above
/// `max_payload` (the allocation guard — a corrupt length field must not
/// drive an unbounded allocation), or a checksum mismatch.
///
/// # Errors
/// Propagates I/O errors from the reader, plus the validation errors
/// above.
pub fn read_frame<R: Read>(
    r: &mut R,
    magic: &[u8; 8],
    max_payload: u64,
) -> io::Result<Option<Vec<u8>>> {
    let mut got = [0u8; 8];
    // Distinguish "stream ended cleanly" (0 bytes) from "died mid-magic".
    let mut filled = 0;
    while filled < got.len() {
        // detlint-allow(panic-safety): `filled < got.len()` is the loop condition, so the range start is in bounds
        match r.read(&mut got[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "frame truncated inside magic",
                ))
            }
            n => filled += n,
        }
    }
    if &got != magic {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame magic mismatch",
        ));
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes);
    if len > max_payload {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame payload length {len} exceeds limit {max_payload}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut stored = [0u8; 8];
    r.read_exact(&mut stored)?;
    if checksum(&payload) != u64::from_le_bytes(stored) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(Some(payload))
}

/// Wraps `payload` in one checksummed frame, in memory — the
/// whole-buffer form of [`write_frame`].
pub fn frame(magic: &[u8; 8], payload: &[u8]) -> Vec<u8> {
    let mut image = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    // detlint-allow(panic-safety): io::Write for Vec<u8> cannot fail, so this expect is unreachable — and quieter than threading io::Result through every in-memory framing call
    write_frame(&mut image, magic, payload).expect("Vec<u8> writes are infallible");
    image
}

/// Validates a framed image and returns its payload; `None` on a wrong
/// magic, truncation, trailing garbage, or checksum mismatch — the
/// whole-buffer form of [`read_frame`].
pub fn parse_frame<'a>(magic: &[u8; 8], bytes: &'a [u8]) -> Option<&'a [u8]> {
    if bytes.get(..8)? != magic {
        return None;
    }
    let len = u64::from_le_bytes(bytes.get(8..16)?.try_into().ok()?) as usize;
    if bytes.len() != FRAME_OVERHEAD.checked_add(len)? {
        return None;
    }
    let payload = bytes.get(16..16 + len)?;
    let stored = u64::from_le_bytes(bytes.get(16 + len..)?.try_into().ok()?);
    (checksum(payload) == stored).then_some(payload)
}

/// Reads and validates a framed image. A missing file or any corruption
/// (wrong magic, truncation, checksum mismatch) is the cold-start case —
/// `Ok(None)` — never an error.
///
/// # Errors
/// Propagates I/O errors from reading an *existing* file (permission
/// failures, `path` being a directory, …).
pub fn load_frame(path: &Path, magic: &[u8; 8]) -> std::io::Result<Option<Vec<u8>>> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(parse_frame(magic, &bytes).map(<[u8]>::to_vec))
}

/// [`frame`] + [`write_atomic`] in one call.
///
/// # Errors
/// Propagates I/O errors from writing the temp file or renaming it into
/// place.
pub fn save_frame(path: &Path, magic: &[u8; 8], payload: &[u8]) -> std::io::Result<()> {
    write_atomic(path, &frame(magic, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"HASCOTST";

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hasco-persist-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn frames_round_trip() {
        let path = temp_path("roundtrip");
        save_frame(&path, MAGIC, b"hello warm state").unwrap();
        let payload = load_frame(&path, MAGIC).unwrap().expect("valid frame");
        assert_eq!(payload, b"hello warm state");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_and_wrong_magic_are_cold_starts() {
        let path = temp_path("corrupt");
        save_frame(&path, MAGIC, b"payload bytes").unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        let mut short = good.clone();
        short.truncate(good.len() - 3);
        for image in [flipped, short, b"tiny".to_vec()] {
            std::fs::write(&path, &image).unwrap();
            assert_eq!(load_frame(&path, MAGIC).unwrap(), None);
        }
        std::fs::write(&path, &good).unwrap();
        assert_eq!(load_frame(&path, b"WRONGMAG").unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_cold_start_but_directories_error() {
        assert_eq!(
            load_frame(Path::new("/nonexistent/hasco.img"), MAGIC).unwrap(),
            None
        );
        let dir = temp_path("dir");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_frame(&dir, MAGIC).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_writes_leave_no_temp_files() {
        let dir = temp_path("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("image.bin");
        save_frame(&path, MAGIC, b"one").unwrap();
        save_frame(&path, MAGIC, b"two").unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["image.bin".to_string()], "temp files leaked");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_frames_stack_on_one_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MAGIC, b"first").unwrap();
        write_frame(&mut buf, MAGIC, b"").unwrap();
        write_frame(&mut buf, MAGIC, b"third frame").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAGIC, 1024).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut r, MAGIC, 1024).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut r, MAGIC, 1024).unwrap().unwrap(),
            b"third frame"
        );
        // Clean end of stream: no more frames, not an error.
        assert!(read_frame(&mut r, MAGIC, 1024).unwrap().is_none());
    }

    #[test]
    fn streaming_truncation_and_short_reads_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MAGIC, b"will be cut short").unwrap();
        // Truncation at every interior boundary: inside the magic, inside
        // the length, inside the payload, inside the checksum. All died
        // mid-frame, so all must surface as UnexpectedEof — never a
        // silent `None`.
        for cut in [3, 12, 20, buf.len() - 2] {
            let mut r = &buf[..cut];
            let err = read_frame(&mut r, MAGIC, 1024).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn streaming_corruption_is_invalid_data() {
        let mut good = Vec::new();
        write_frame(&mut good, MAGIC, b"checksummed payload").unwrap();

        // Wrong magic.
        let err = read_frame(&mut &good[..], b"WRONGMAG", 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Flipped payload byte -> checksum mismatch.
        let mut flipped = good.clone();
        flipped[18] ^= 0xff;
        let err = read_frame(&mut &flipped[..], MAGIC, 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A corrupt (huge) length field must hit the allocation guard,
        // not attempt a multi-exabyte Vec.
        let mut huge = good.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_frame(&mut &huge[..], MAGIC, 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Payload over the caller's limit is rejected before reading it.
        let err = read_frame(&mut &good[..], MAGIC, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn parse_frame_rejects_trailing_garbage() {
        let mut image = frame(MAGIC, b"exact");
        assert_eq!(parse_frame(MAGIC, &image).unwrap(), b"exact");
        image.push(0);
        assert_eq!(parse_frame(MAGIC, &image), None);
    }
}
