//! Shared persistence machinery for warm-state images.
//!
//! Two kinds of warm state survive engine restarts: the memo cache
//! ([`crate::MemoCache`]'s own format, which predates this module) and the
//! surrogate-registry store. Both want the same plumbing:
//!
//! * **atomic replacement** ([`write_atomic`]) — bytes land in a uniquely
//!   named temp file in the target directory, then rename into place, so a
//!   crash mid-save or a concurrent saver never leaves a torn image;
//! * **checksummed framing** ([`frame`] / [`parse_frame`]) — an 8-byte
//!   magic (carrying a format version), the payload, and a trailing
//!   fingerprint of the payload, so any corruption is detected instead of
//!   decoded;
//! * **tolerant loading** ([`load_frame`]) — a missing file or a corrupt
//!   image is the expected cold-start case (`Ok(None)`), while real I/O
//!   failures (permissions, a directory at the path) stay errors.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Writes `image` to `path` atomically: the bytes land in a uniquely
/// named temp file in the same directory, then rename into place. A crash
/// mid-write leaves the previous image intact, and two concurrent savers
/// each publish a complete (if last-writer-wins) file — never a torn one.
///
/// # Errors
/// Propagates I/O errors from writing the temp file or renaming it into
/// place.
pub fn write_atomic(path: &Path, image: &[u8]) -> std::io::Result<()> {
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "image".into());
    let tmp = dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        // detlint-allow(atomics): process-local uniqueness counter for temp-file names; never persisted, never ordered
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::write(&tmp, image)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// Wraps `payload` in the checksummed frame: `magic ++ payload ++
/// fingerprint(payload)`.
pub fn frame(magic: &[u8; 8], payload: &[u8]) -> Vec<u8> {
    let mut image = Vec::with_capacity(payload.len() + 16);
    image.extend_from_slice(magic);
    image.extend_from_slice(payload);
    let mut fp = crate::Fingerprinter::new();
    fp.write_bytes(payload);
    image.extend_from_slice(&fp.finish().0.to_le_bytes());
    image
}

/// Validates a framed image and returns its payload; `None` on a wrong
/// magic, truncation, or checksum mismatch.
pub fn parse_frame<'a>(magic: &[u8; 8], bytes: &'a [u8]) -> Option<&'a [u8]> {
    if bytes.len() < magic.len() + 8 || &bytes[..magic.len()] != magic {
        return None;
    }
    let payload = &bytes[magic.len()..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().ok()?);
    let mut fp = crate::Fingerprinter::new();
    fp.write_bytes(payload);
    (fp.finish().0 == stored).then_some(payload)
}

/// Reads and validates a framed image. A missing file or any corruption
/// (wrong magic, truncation, checksum mismatch) is the cold-start case —
/// `Ok(None)` — never an error.
///
/// # Errors
/// Propagates I/O errors from reading an *existing* file (permission
/// failures, `path` being a directory, …).
pub fn load_frame(path: &Path, magic: &[u8; 8]) -> std::io::Result<Option<Vec<u8>>> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(parse_frame(magic, &bytes).map(<[u8]>::to_vec))
}

/// [`frame`] + [`write_atomic`] in one call.
///
/// # Errors
/// Propagates I/O errors from writing the temp file or renaming it into
/// place.
pub fn save_frame(path: &Path, magic: &[u8; 8], payload: &[u8]) -> std::io::Result<()> {
    write_atomic(path, &frame(magic, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"HASCOTST";

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hasco-persist-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn frames_round_trip() {
        let path = temp_path("roundtrip");
        save_frame(&path, MAGIC, b"hello warm state").unwrap();
        let payload = load_frame(&path, MAGIC).unwrap().expect("valid frame");
        assert_eq!(payload, b"hello warm state");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_and_wrong_magic_are_cold_starts() {
        let path = temp_path("corrupt");
        save_frame(&path, MAGIC, b"payload bytes").unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        let mut short = good.clone();
        short.truncate(good.len() - 3);
        for image in [flipped, short, b"tiny".to_vec()] {
            std::fs::write(&path, &image).unwrap();
            assert_eq!(load_frame(&path, MAGIC).unwrap(), None);
        }
        std::fs::write(&path, &good).unwrap();
        assert_eq!(load_frame(&path, b"WRONGMAG").unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_cold_start_but_directories_error() {
        assert_eq!(
            load_frame(Path::new("/nonexistent/hasco.img"), MAGIC).unwrap(),
            None
        );
        let dir = temp_path("dir");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_frame(&dir, MAGIC).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_writes_leave_no_temp_files() {
        let dir = temp_path("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("image.bin");
        save_frame(&path, MAGIC, b"one").unwrap();
        save_frame(&path, MAGIC, b"two").unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["image.bin".to_string()], "temp files leaked");
        std::fs::remove_dir_all(&dir).ok();
    }
}
