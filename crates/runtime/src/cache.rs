//! A sharded, bounded, concurrent memoization cache.
//!
//! Evaluating one (accelerator, workload) pair runs a whole software DSE —
//! milliseconds to seconds of work — while optimizers frequently revisit
//! configurations (MOBO retuning rounds, NSGA-II elitism, annealer walks
//! crossing their own tracks). [`MemoCache`] memoizes those evaluations
//! under a caller-chosen key (typically a [`crate::Fingerprint`]), with:
//!
//! * lock sharding so parallel workers rarely contend;
//! * a bounded capacity with oldest-first (FIFO) eviction per shard;
//! * [`CacheStats`] counters (hits / misses / inserts / evictions) cheap
//!   enough to leave on in production and surfaced by `core::report`;
//! * cross-run persistence ([`MemoCache::save_to_file`] /
//!   [`MemoCache::load_from_file`]): a checksummed binary image keyed by
//!   stable fingerprints, so repeated runs start warm; any corruption
//!   degrades to a clean cold start, never a wrong answer;
//! * entry ages: every entry carries the Unix timestamp of its insertion,
//!   persisted with the image, so long-lived shared cache files can be
//!   garbage-collected by age ([`MemoCache::compact`], the `max_age`
//!   parameter of [`MemoCache::save_merged_with_max_age`]) instead of
//!   growing until the capacity bound thrashes. Stamps are clamped to
//!   "now" on insert, load, and merge: an entry stamped in the future
//!   (clock skew, an image written on another host) would otherwise dodge
//!   every GC pass forever.
//!
//! Compute-on-miss runs **outside** the shard lock: two workers racing on
//! the same key may both compute, but memoized evaluations are pure, so
//! both arrive at the same value and determinism is unaffected — the
//! duplicated work is the price of never blocking a whole shard on one
//! slow evaluation.

// detlint-allow(iteration-order): shard maps are keyed lookups only; every snapshot/persist order comes from each shard's FIFO `order` vec
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const SHARDS: usize = 16;

/// File magic + format version for persisted caches. Version 2 added a
/// per-entry insertion timestamp (for age-based GC); version-1 images are
/// still readable — their entries are treated as freshly inserted.
const PERSIST_MAGIC: &[u8; 8] = b"HASCOMC2";
const PERSIST_MAGIC_V1: &[u8; 8] = b"HASCOMC1";

/// Seconds since the Unix epoch (0 if the clock is before the epoch).
///
/// Clock audit: these stamps exist solely for age-based GC (`compact` /
/// `save_merged_with_max_age`). They ride alongside values, are clamped
/// to "now" by `insert_stamped` on insert/load/merge so a skewed clock
/// cannot predate or post-date an entry, and are never hashed into
/// fingerprints, counted in `CacheStats` compares, or returned to
/// callers — cached *values* are byte-identical whatever the clock says.
fn now_secs() -> u64 {
    // detlint-allow(wall-clock): age stamps for GC only; clamped on insert/load/merge and never reach fingerprints, stats, or results
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries written (first-time inserts; racing duplicates count once).
    pub inserts: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when the cache was never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Shard<K, V> {
    /// Value plus insertion timestamp (Unix seconds).
    // detlint-allow(iteration-order): lookup-only; iteration for output always goes through `order` below
    map: HashMap<K, (V, u64)>,
    /// Keys in insertion order, for FIFO eviction.
    order: std::collections::VecDeque<K>,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            // detlint-allow(iteration-order): see the field rationale above
            map: HashMap::new(),
            order: std::collections::VecDeque::new(),
        }
    }
}

/// Per-shard counter cells, so shard-level behavior (hot shards, skewed
/// eviction) is observable without widening any lock.
#[derive(Debug, Default)]
struct ShardCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl ShardCounters {
    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A concurrent memoizing cache with bounded capacity and statistics.
#[derive(Debug)]
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// Maximum entries per shard (total capacity / shard count).
    per_shard: usize,
    /// One counter block per shard ([`MemoCache::shard_stats`]);
    /// [`MemoCache::stats`] sums them.
    counters: Vec<ShardCounters>,
}

impl<K: Eq + Hash + Clone, V: Clone> MemoCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (minimum one per
    /// shard). The per-shard bound rounds **up**, so the effective
    /// capacity is never below the requested one.
    pub fn new(capacity: usize) -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard: capacity.div_ceil(SHARDS).max(1),
            counters: (0..SHARDS).map(|_| ShardCounters::default()).collect(),
        }
    }

    /// Total capacity bound: at least the capacity requested at
    /// construction, rounded up to a multiple of the shard count.
    pub fn capacity(&self) -> usize {
        self.per_shard * SHARDS
    }

    /// Current entry count across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").map.len())
            .sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_index(&self, key: &K) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// Looks `key` up without computing.
    pub fn get(&self, key: &K) -> Option<V> {
        let idx = self.shard_index(key);
        let shard = self.shards[idx].lock().expect("shard poisoned");
        match shard.map.get(key) {
            Some((v, _)) => {
                self.counters[idx].hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.counters[idx].misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a value stamped "now", evicting the shard's oldest entry
    /// when full.
    pub fn insert(&self, key: K, value: V) {
        self.insert_stamped(key, value, now_secs());
    }

    /// Inserts a value with an explicit insertion timestamp (Unix
    /// seconds). Warm-seeding paths use this to preserve the age an entry
    /// had in the cache it came from, so age-based GC sees through
    /// load→run→save cycles instead of treating every reload as fresh.
    ///
    /// Stamps are clamped to "now": an entry stamped in the future (clock
    /// skew, an image restored from another host) would otherwise outlive
    /// every [`MemoCache::compact`] / `max_age` GC pass forever, since its
    /// age never reaches any cutoff.
    pub fn insert_stamped(&self, key: K, value: V, stamp: u64) {
        let stamp = stamp.min(now_secs());
        let idx = self.shard_index(&key);
        let mut shard = self.shards[idx].lock().expect("shard poisoned");
        if shard.map.insert(key.clone(), (value, stamp)).is_none() {
            self.counters[idx].inserts.fetch_add(1, Ordering::Relaxed);
            shard.order.push_back(key);
            while shard.map.len() > self.per_shard {
                if let Some(old) = shard.order.pop_front() {
                    if shard.map.remove(&old).is_some() {
                        self.counters[idx].evictions.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    break;
                }
            }
        }
    }

    /// Like [`MemoCache::insert_stamped`], but a key collision keeps the
    /// **newer** of the two stamps (the value is still replaced) — the
    /// in-memory analogue of the merged save's stamp handling, for
    /// publishers whose snapshot may carry stale stamps: age-GC must not
    /// expire an entry someone recently renewed just because a
    /// long-running publisher still holds the old stamp. Like
    /// [`MemoCache::insert_stamped`], the incoming stamp is clamped to
    /// "now" first.
    pub fn insert_stamped_newest(&self, key: K, value: V, stamp: u64) {
        let stamp = stamp.min(now_secs());
        let idx = self.shard_index(&key);
        let mut shard = self.shards[idx].lock().expect("shard poisoned");
        let stamp = match shard.map.get(&key) {
            Some((_, prior)) => stamp.max(*prior),
            None => stamp,
        };
        if shard.map.insert(key.clone(), (value, stamp)).is_none() {
            self.counters[idx].inserts.fetch_add(1, Ordering::Relaxed);
            shard.order.push_back(key);
            while shard.map.len() > self.per_shard {
                if let Some(old) = shard.order.pop_front() {
                    if shard.map.remove(&old).is_some() {
                        self.counters[idx].evictions.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    break;
                }
            }
        }
    }

    /// Returns the cached value for `key`, computing and inserting it on a
    /// miss. `compute` runs without holding the shard lock; it must be
    /// pure, since racing threads may each compute the value once.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Drops every entry older than `max_age` (by insertion timestamp) and
    /// returns how many were removed. This is the explicit-compaction half
    /// of the cache-lifecycle story: long-lived engines call it (or let
    /// their persistence layer pass a `max_age` to
    /// [`MemoCache::save_merged_with_max_age`]) so shared caches shed
    /// entries that no run has refreshed in a long time. Removals do not
    /// count as capacity evictions in [`CacheStats`].
    pub fn compact(&self, max_age: Duration) -> usize {
        let cutoff = now_secs().saturating_sub(max_age.as_secs());
        let mut removed = 0;
        for shard in &self.shards {
            let mut s = shard.lock().expect("shard poisoned");
            // order-insensitive: this collects the stale-key *set* for a
            // batch removal; survivor order is preserved by `order`.
            let stale: Vec<K> = s
                // detlint-allow(iteration-order): stale-key set collection, order-insensitive (see above)
                .map
                .iter()
                .filter(|(_, (_, stamp))| *stamp < cutoff)
                .map(|(k, _)| k.clone())
                .collect();
            for k in &stale {
                s.map.remove(k);
            }
            if !stale.is_empty() {
                removed += stale.len();
                // Rebuild the FIFO queue without the dropped keys.
                let mut order = std::mem::take(&mut s.order);
                order.retain(|k| s.map.contains_key(k));
                s.order = order;
            }
        }
        removed
    }

    /// Clones every entry, shard by shard in insertion order — the basis
    /// of [`MemoCache::save_to_file`].
    pub fn snapshot(&self) -> Vec<(K, V)> {
        self.snapshot_stamped()
            .into_iter()
            .map(|(k, v, _)| (k, v))
            .collect()
    }

    /// Like [`MemoCache::snapshot`], but keeps each entry's insertion
    /// timestamp — the form engines pass between a shared store and
    /// per-job caches so ages survive the round trip.
    pub fn snapshot_stamped(&self) -> Vec<(K, V, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let s = shard.lock().expect("shard poisoned");
            for key in &s.order {
                if let Some((v, stamp)) = s.map.get(key) {
                    out.push((key.clone(), v.clone(), *stamp));
                }
            }
        }
        out
    }

    /// Serializes entries into the checksummed persisted-image layout.
    fn build_image(
        entries: &[(K, V, u64)],
        encode: &mut impl FnMut(&K, &V, &mut Vec<u8>),
    ) -> Vec<u8> {
        let mut payload = Vec::new();
        for (k, v, stamp) in entries {
            let mut entry = Vec::new();
            encode(k, v, &mut entry);
            payload.extend_from_slice(&(entry.len() as u32).to_le_bytes());
            payload.extend_from_slice(&stamp.to_le_bytes());
            payload.extend_from_slice(&entry);
        }
        let mut file = Vec::with_capacity(payload.len() + 32);
        file.extend_from_slice(PERSIST_MAGIC);
        file.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        let mut fp = crate::Fingerprinter::new();
        fp.write_bytes(&payload);
        file.extend_from_slice(&fp.finish().0.to_le_bytes());
        file
    }

    /// Writes `image` to `path` atomically via the shared
    /// [`crate::persist::write_atomic`] machinery (same-directory temp
    /// file + rename), so a crash mid-write or a concurrent saver never
    /// leaves a torn image.
    fn write_image_atomically(path: &std::path::Path, image: &[u8]) -> std::io::Result<()> {
        crate::persist::write_atomic(path, image)
    }

    /// Persists the cache to `path` so a later run can start warm
    /// ([`MemoCache::load_from_file`]). `encode` appends one entry's bytes
    /// to the buffer; keys are expected to be derived from
    /// [`crate::StableFingerprint`]s, which are stable across processes.
    /// Returns the number of entries written.
    ///
    /// The image replaces whatever the file held (see
    /// [`MemoCache::save_merged_to_file`] for accumulate-across-runs
    /// semantics), but the replacement is atomic: a temp file in the same
    /// directory is renamed into place, so a crash mid-save or a
    /// concurrent saver can never leave a truncated image behind.
    ///
    /// # Errors
    /// Propagates I/O errors from writing the temp file or renaming it
    /// into place.
    pub fn save_to_file(
        &self,
        path: &std::path::Path,
        mut encode: impl FnMut(&K, &V, &mut Vec<u8>),
    ) -> std::io::Result<u64> {
        let entries = self.snapshot_stamped();
        Self::write_image_atomically(path, &Self::build_image(&entries, &mut encode))?;
        Ok(entries.len() as u64)
    }

    /// Persists the cache to `path`, first merging in whatever a previous
    /// run (or a concurrent bench binary) already saved there: the
    /// existing file's entries are loaded and this cache's entries win on
    /// key collisions (newest-wins), so shared cache files accumulate
    /// warmth across runs instead of thrashing. An unreadable or corrupt
    /// existing file contributes nothing (the merge degrades to a plain
    /// save). The merge is eviction-aware: when the union exceeds this
    /// cache's [`MemoCache::capacity`], the oldest surviving entries are
    /// dropped first, exactly as the in-memory FIFO bound would. Returns
    /// the number of entries written; the write is atomic like
    /// [`MemoCache::save_to_file`].
    ///
    /// # Errors
    /// Propagates I/O errors from writing the temp file or renaming it
    /// into place.
    pub fn save_merged_to_file(
        &self,
        path: &std::path::Path,
        encode: impl FnMut(&K, &V, &mut Vec<u8>),
        decode: impl FnMut(&[u8]) -> Option<(K, V)>,
    ) -> std::io::Result<u64> {
        self.save_merged_with_max_age(path, encode, decode, None)
    }

    /// Like [`MemoCache::save_merged_to_file`], but additionally drops
    /// every merged entry older than `max_age` (by insertion timestamp)
    /// before writing — the time-based GC for long-lived shared cache
    /// files. With `max_age = None` this is exactly the plain merge.
    ///
    /// # Errors
    /// Propagates I/O errors from writing the temp file or renaming it
    /// into place.
    pub fn save_merged_with_max_age(
        &self,
        path: &std::path::Path,
        mut encode: impl FnMut(&K, &V, &mut Vec<u8>),
        mut decode: impl FnMut(&[u8]) -> Option<(K, V)>,
        max_age: Option<Duration>,
    ) -> std::io::Result<u64> {
        let existing: Vec<(K, V, u64)> = std::fs::read(path)
            .ok()
            .and_then(|bytes| Self::parse_persisted(&bytes, &mut decode))
            .unwrap_or_default();
        // Newest-wins, order-preserving merge: a refreshed key moves to
        // the back (it is the newest), so capacity truncation below drops
        // genuinely stale entries first. The saver's *value* wins on a
        // collision, but the *stamp* is the max of both sides: another
        // process may have refreshed the key in the file after this cache
        // loaded it, and age-GC must not expire an entry someone recently
        // renewed just because a long-running saver still carries the old
        // stamp.
        let now = now_secs();
        let mut slots: Vec<Option<(K, V, u64)>> = Vec::new();
        // detlint-allow(iteration-order): collision index, keyed lookups only; merged order comes from the input chain
        let mut index: HashMap<K, usize> = HashMap::new();
        for (k, v, mut stamp) in existing.into_iter().chain(self.snapshot_stamped()) {
            // Same clamp as the insert path: a future-stamped file entry
            // (clock skew on another writer) must not survive every
            // max-age GC pass forever.
            stamp = stamp.min(now);
            if let Some(&at) = index.get(&k) {
                if let Some((_, _, prior)) = slots[at].take() {
                    stamp = stamp.max(prior);
                }
            }
            index.insert(k.clone(), slots.len());
            slots.push(Some((k, v, stamp)));
        }
        let mut entries: Vec<(K, V, u64)> = slots.into_iter().flatten().collect();
        if let Some(max_age) = max_age {
            let cutoff = now.saturating_sub(max_age.as_secs());
            entries.retain(|(_, _, stamp)| *stamp >= cutoff);
        }
        let cap = self.capacity();
        if entries.len() > cap {
            entries.drain(..entries.len() - cap);
        }
        Self::write_image_atomically(path, &Self::build_image(&entries, &mut encode))?;
        Ok(entries.len() as u64)
    }

    /// Loads entries saved by [`MemoCache::save_to_file`] into this cache.
    /// `decode` parses one entry's bytes back into a `(key, value)` pair,
    /// returning `None` for unrecognized layouts. Entry timestamps are
    /// restored (version-1 images, which predate timestamps, load as
    /// freshly inserted).
    ///
    /// Any anomaly in the image itself — missing file, bad magic,
    /// truncation, checksum mismatch, or an entry the decoder rejects —
    /// yields a clean cold start: `Ok(0)` with the cache left untouched.
    /// Returns the number of entries inserted (the capacity bound still
    /// applies, so a cache smaller than the file keeps only the newest
    /// shard-capacity's worth).
    ///
    /// # Errors
    /// Propagates I/O errors from reading an *existing* file (permission
    /// failures, `path` being a directory, …). A file that simply does
    /// not exist is the expected first-run case and is `Ok(0)`, not an
    /// error.
    pub fn load_from_file(
        &self,
        path: &std::path::Path,
        mut decode: impl FnMut(&[u8]) -> Option<(K, V)>,
    ) -> std::io::Result<u64> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let Some(entries) = Self::parse_persisted(&bytes, &mut decode) else {
            return Ok(0);
        };
        let count = entries.len() as u64;
        for (k, v, stamp) in entries {
            self.insert_stamped(k, v, stamp);
        }
        Ok(count)
    }

    /// Validates and decodes a persisted cache image; `None` on any
    /// corruption. Understands both the current (timestamped) layout and
    /// the timestamp-free version-1 layout.
    fn parse_persisted(
        bytes: &[u8],
        decode: &mut impl FnMut(&[u8]) -> Option<(K, V)>,
    ) -> Option<Vec<(K, V, u64)>> {
        let magic_len = PERSIST_MAGIC.len();
        let header = magic_len + 8;
        if bytes.len() < header + 8 {
            return None;
        }
        let stamped = match &bytes[..magic_len] {
            m if m == PERSIST_MAGIC => true,
            m if m == PERSIST_MAGIC_V1 => false,
            _ => return None,
        };
        let count = u64::from_le_bytes(bytes[magic_len..header].try_into().ok()?);
        let payload = &bytes[header..bytes.len() - 8];
        let stored_sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().ok()?);
        let mut fp = crate::Fingerprinter::new();
        fp.write_bytes(payload);
        if fp.finish().0 != stored_sum {
            return None;
        }
        let mut entries = Vec::new();
        let mut rest = payload;
        let fallback_stamp = now_secs();
        for _ in 0..count {
            if rest.len() < 4 {
                return None;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
            rest = &rest[4..];
            let stamp = if stamped {
                if rest.len() < 8 {
                    return None;
                }
                let s = u64::from_le_bytes(rest[..8].try_into().ok()?);
                rest = &rest[8..];
                s
            } else {
                fallback_stamp
            };
            if rest.len() < len {
                return None;
            }
            let (k, v) = decode(&rest[..len])?;
            entries.push((k, v, stamp));
            rest = &rest[len..];
        }
        if !rest.is_empty() {
            return None;
        }
        Some(entries)
    }

    /// Snapshot of the counters, summed across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.counters {
            let s = c.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.inserts += s.inserts;
            total.evictions += s.evictions;
        }
        total
    }

    /// Per-shard counter snapshot, in shard order — the telemetry view of
    /// shard balance (hot shards, skewed eviction pressure).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.counters.iter().map(ShardCounters::stats).collect()
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("shard poisoned");
            s.map.clear();
            s.order.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        assert_eq!(cache.get_or_insert_with(1, || 10), 10); // miss + insert
        assert_eq!(cache.get_or_insert_with(1, || 99), 10); // hit; compute skipped
        assert_eq!(cache.get_or_insert_with(2, || 20), 20); // miss + insert
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shard_stats_sum_to_totals_and_localize_traffic() {
        // Roomy capacity: no shard evicts, so every re-read is a hit.
        let cache: MemoCache<u64, u64> = MemoCache::new(1024);
        for k in 0..40u64 {
            cache.insert(k, k);
        }
        for k in 0..40u64 {
            assert_eq!(cache.get(&k), Some(k));
        }
        cache.get(&10_000);
        let shards = cache.shard_stats();
        assert_eq!(shards.len(), super::SHARDS);
        let total = cache.stats();
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), total.hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), total.misses);
        assert_eq!(shards.iter().map(|s| s.inserts).sum::<u64>(), total.inserts);
        // A single key's traffic lands on exactly one shard.
        let hot = cache.shard_index(&7);
        let before = cache.shard_stats();
        cache.get(&7);
        let after = cache.shard_stats();
        assert_eq!(after[hot].hits, before[hot].hits + 1);
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if i != hot {
                assert_eq!(b, a, "shard {i} unexpectedly changed");
            }
        }
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        // Single-entry shards: every shard holds exactly one key.
        let cache: MemoCache<u64, u64> = MemoCache::new(1);
        assert_eq!(cache.capacity(), super::SHARDS);
        // Find two keys landing in the same shard and insert three values.
        let mut same_shard = vec![0u64];
        let first = cache.shard_index(&0);
        for k in 1..10_000u64 {
            if cache.shard_index(&k) == first {
                same_shard.push(k);
                if same_shard.len() == 3 {
                    break;
                }
            }
        }
        assert_eq!(same_shard.len(), 3, "needed 3 colliding keys");
        for &k in &same_shard {
            cache.insert(k, k + 100);
        }
        let s = cache.stats();
        assert_eq!(s.inserts, 3);
        assert_eq!(s.evictions, 2);
        // Only the newest of the colliding keys survives.
        assert_eq!(cache.get(&same_shard[2]), Some(same_shard[2] + 100));
        assert_eq!(cache.get(&same_shard[0]), None);
        assert_eq!(cache.get(&same_shard[1]), None);
    }

    #[test]
    fn reinserting_an_existing_key_is_not_an_insert() {
        let cache: MemoCache<u64, u64> = MemoCache::new(8);
        cache.insert(1, 1);
        cache.insert(1, 2);
        assert_eq!(cache.stats().inserts, 1);
        assert_eq!(cache.get(&1), Some(2));
    }

    #[test]
    fn clear_preserves_counters() {
        let cache: MemoCache<u64, u64> = MemoCache::new(8);
        cache.get_or_insert_with(1, || 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    fn encode_u64_pair(k: &u64, v: &u64, out: &mut Vec<u8>) {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }

    fn decode_u64_pair(bytes: &[u8]) -> Option<(u64, u64)> {
        if bytes.len() != 16 {
            return None;
        }
        Some((
            u64::from_le_bytes(bytes[..8].try_into().ok()?),
            u64::from_le_bytes(bytes[8..].try_into().ok()?),
        ))
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hasco-cache-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn persistence_round_trips() {
        let cache: MemoCache<u64, u64> = MemoCache::new(256);
        for k in 0..50u64 {
            cache.insert(k, k * 7);
        }
        let path = temp_path("roundtrip");
        assert_eq!(cache.save_to_file(&path, encode_u64_pair).unwrap(), 50);
        let warm: MemoCache<u64, u64> = MemoCache::new(256);
        assert_eq!(warm.load_from_file(&path, decode_u64_pair).unwrap(), 50);
        for k in 0..50u64 {
            assert_eq!(warm.get(&k), Some(k * 7), "key {k}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn timestamps_survive_persistence_round_trips() {
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        cache.insert_stamped(1, 10, 12345);
        cache.insert_stamped(2, 20, 67890);
        let path = temp_path("stamps");
        cache.save_to_file(&path, encode_u64_pair).unwrap();
        let warm: MemoCache<u64, u64> = MemoCache::new(64);
        warm.load_from_file(&path, decode_u64_pair).unwrap();
        let mut stamps: Vec<(u64, u64)> = warm
            .snapshot_stamped()
            .into_iter()
            .map(|(k, _, s)| (k, s))
            .collect();
        stamps.sort_unstable();
        assert_eq!(stamps, vec![(1, 12345), (2, 67890)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_images_load_as_fresh_entries() {
        // Hand-build a version-1 (timestamp-free) image; it must load
        // cleanly with every entry treated as freshly inserted.
        let mut payload = Vec::new();
        for (k, v) in [(1u64, 10u64), (2, 20)] {
            let mut entry = Vec::new();
            encode_u64_pair(&k, &v, &mut entry);
            payload.extend_from_slice(&(entry.len() as u32).to_le_bytes());
            payload.extend_from_slice(&entry);
        }
        let mut image = Vec::new();
        image.extend_from_slice(PERSIST_MAGIC_V1);
        image.extend_from_slice(&2u64.to_le_bytes());
        image.extend_from_slice(&payload);
        let mut fp = crate::Fingerprinter::new();
        fp.write_bytes(&payload);
        image.extend_from_slice(&fp.finish().0.to_le_bytes());

        let path = temp_path("v1");
        std::fs::write(&path, &image).unwrap();
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        assert_eq!(cache.load_from_file(&path, decode_u64_pair).unwrap(), 2);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&2), Some(20));
        // Fresh stamps: an aggressive compaction right after loading keeps
        // them.
        assert_eq!(cache.compact(Duration::from_secs(60)), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_stamps_are_clamped_on_insert() {
        // Regression: a stamp from a skewed clock used to survive every
        // compact()/max-age pass forever, because its age never reached
        // any cutoff.
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        let future = super::now_secs() + 1_000_000;
        cache.insert_stamped(1, 10, future);
        cache.insert_stamped_newest(2, 20, future);
        for (_, _, stamp) in cache.snapshot_stamped() {
            assert!(
                stamp <= super::now_secs(),
                "future stamp survived the clamp: {stamp}"
            );
        }
        // A clamped entry ages normally: after (simulated) aging it is
        // GC-able, which the unclamped future stamp never was.
        assert_eq!(cache.compact(Duration::from_secs(3600)), 0);
    }

    #[test]
    fn future_stamps_are_clamped_on_load_and_merge() {
        // Hand-build a v2 image whose entries claim timestamps far in the
        // future (an image written by a host with a skewed clock).
        let future = super::now_secs() + 1_000_000;
        let mut payload = Vec::new();
        for (k, v) in [(1u64, 10u64), (2, 20)] {
            let mut entry = Vec::new();
            encode_u64_pair(&k, &v, &mut entry);
            payload.extend_from_slice(&(entry.len() as u32).to_le_bytes());
            payload.extend_from_slice(&future.to_le_bytes());
            payload.extend_from_slice(&entry);
        }
        let mut image = Vec::new();
        image.extend_from_slice(PERSIST_MAGIC);
        image.extend_from_slice(&2u64.to_le_bytes());
        image.extend_from_slice(&payload);
        let mut fp = crate::Fingerprinter::new();
        fp.write_bytes(&payload);
        image.extend_from_slice(&fp.finish().0.to_le_bytes());

        let path = temp_path("future");
        std::fs::write(&path, &image).unwrap();

        // Loading clamps.
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        assert_eq!(cache.load_from_file(&path, decode_u64_pair).unwrap(), 2);
        for (_, _, stamp) in cache.snapshot_stamped() {
            assert!(stamp <= super::now_secs(), "load kept a future stamp");
        }

        // Merging over the skewed file clamps the file's entries too: the
        // saved image must contain no future stamps.
        std::fs::write(&path, &image).unwrap();
        let merger: MemoCache<u64, u64> = MemoCache::new(64);
        merger.insert(3, 30);
        merger
            .save_merged_to_file(&path, encode_u64_pair, decode_u64_pair)
            .unwrap();
        let reloaded: MemoCache<u64, u64> = MemoCache::new(64);
        assert_eq!(reloaded.load_from_file(&path, decode_u64_pair).unwrap(), 3);
        for (_, _, stamp) in reloaded.snapshot_stamped() {
            assert!(stamp <= super::now_secs(), "merge kept a future stamp");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_drops_only_aged_entries() {
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        let now = super::now_secs();
        cache.insert_stamped(1, 10, now.saturating_sub(10_000));
        cache.insert_stamped(2, 20, now.saturating_sub(10));
        cache.insert(3, 30);
        assert_eq!(cache.compact(Duration::from_secs(3600)), 1);
        assert_eq!(cache.get(&1), None, "aged entry must be gone");
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.len(), 2);
        // Compaction is not a capacity eviction.
        assert_eq!(cache.stats().evictions, 0);
        // Eviction order stays consistent after compaction (no dangling
        // keys in the FIFO queue).
        assert_eq!(cache.snapshot().len(), 2);
    }

    #[test]
    fn merged_save_with_max_age_garbage_collects_the_file() {
        let path = temp_path("merge-gc");
        std::fs::remove_file(&path).ok();
        let now = super::now_secs();
        let old: MemoCache<u64, u64> = MemoCache::new(64);
        old.insert_stamped(1, 10, now.saturating_sub(10_000));
        old.insert_stamped(2, 20, now.saturating_sub(9_000));
        old.save_to_file(&path, encode_u64_pair).unwrap();
        // A later run merges fresh entries with a one-hour max age: the
        // aged entries are dropped from the file, the fresh ones kept.
        let fresh: MemoCache<u64, u64> = MemoCache::new(64);
        fresh.insert(3, 30);
        let written = fresh
            .save_merged_with_max_age(
                &path,
                encode_u64_pair,
                decode_u64_pair,
                Some(Duration::from_secs(3600)),
            )
            .unwrap();
        assert_eq!(written, 1);
        let warm: MemoCache<u64, u64> = MemoCache::new(64);
        assert_eq!(warm.load_from_file(&path, decode_u64_pair).unwrap(), 1);
        assert_eq!(warm.get(&3), Some(30));
        assert_eq!(warm.get(&1), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capacity_is_never_below_the_request() {
        // 100 / 16 rounds down to 6 shards of 96; div_ceil gives 7 * 16.
        assert_eq!(MemoCache::<u64, u64>::new(100).capacity(), 112);
        assert_eq!(MemoCache::<u64, u64>::new(96).capacity(), 96);
        assert_eq!(MemoCache::<u64, u64>::new(0).capacity(), super::SHARDS);
        for req in [1usize, 7, 16, 17, 100, 4096, 5000] {
            assert!(
                MemoCache::<u64, u64>::new(req).capacity() >= req,
                "capacity({req}) reported below the request"
            );
        }
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("hasco-cache-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        cache.insert(1, 2);
        cache.save_to_file(&path, encode_u64_pair).unwrap();
        cache
            .save_merged_to_file(&path, encode_u64_pair, decode_u64_pair)
            .unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["cache.bin".to_string()], "temp files leaked");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_save_accumulates_and_newest_wins() {
        let path = temp_path("merge");
        std::fs::remove_file(&path).ok();
        let first: MemoCache<u64, u64> = MemoCache::new(256);
        first.insert(1, 10);
        first.insert(2, 20);
        first
            .save_merged_to_file(&path, encode_u64_pair, decode_u64_pair)
            .unwrap();
        // A later run shares keys 2 and 3; its value for key 2 must win.
        let second: MemoCache<u64, u64> = MemoCache::new(256);
        second.insert(2, 22);
        second.insert(3, 30);
        let written = second
            .save_merged_to_file(&path, encode_u64_pair, decode_u64_pair)
            .unwrap();
        assert_eq!(written, 3);
        let loaded: MemoCache<u64, u64> = MemoCache::new(256);
        assert_eq!(loaded.load_from_file(&path, decode_u64_pair).unwrap(), 3);
        assert_eq!(loaded.get(&1), Some(10), "existing-only entry lost");
        assert_eq!(loaded.get(&2), Some(22), "newest value must win");
        assert_eq!(loaded.get(&3), Some(30));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merged_save_respects_the_capacity_bound_evicting_oldest() {
        let path = temp_path("merge-cap");
        std::fs::remove_file(&path).ok();
        let big: MemoCache<u64, u64> = MemoCache::new(1024);
        for k in 0..100u64 {
            big.insert(k, k);
        }
        big.save_to_file(&path, encode_u64_pair).unwrap();
        // A tiny cache merging on top keeps only its capacity's worth,
        // and its own (newest) entries survive the truncation.
        let small: MemoCache<u64, u64> = MemoCache::new(16);
        small.insert(1000, 1);
        let written = small
            .save_merged_to_file(&path, encode_u64_pair, decode_u64_pair)
            .unwrap();
        assert_eq!(written as usize, small.capacity());
        let loaded: MemoCache<u64, u64> = MemoCache::new(1024);
        loaded.load_from_file(&path, decode_u64_pair).unwrap();
        assert_eq!(loaded.get(&1000), Some(1), "fresh entry must survive");
        assert_eq!(loaded.len(), small.capacity());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merged_save_over_a_corrupt_file_degrades_to_plain_save() {
        let path = temp_path("merge-corrupt");
        std::fs::write(&path, b"HASCOMC2 but then garbage").unwrap();
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        cache.insert(7, 70);
        assert_eq!(
            cache
                .save_merged_to_file(&path, encode_u64_pair, decode_u64_pair)
                .unwrap(),
            1
        );
        let loaded: MemoCache<u64, u64> = MemoCache::new(64);
        assert_eq!(loaded.load_from_file(&path, decode_u64_pair).unwrap(), 1);
        assert_eq!(loaded.get(&7), Some(70));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_propagates_real_io_errors() {
        // A directory at the path is an I/O failure, not a cold start.
        let mut dir = std::env::temp_dir();
        dir.push(format!("hasco-cache-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        assert!(cache.load_from_file(&dir, decode_u64_pair).is_err());
        assert!(cache.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        let loaded = cache
            .load_from_file(
                std::path::Path::new("/nonexistent/hasco.bin"),
                decode_u64_pair,
            )
            .unwrap();
        assert_eq!(loaded, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn corrupted_files_yield_clean_cold_starts() {
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        for k in 0..10u64 {
            cache.insert(k, k);
        }
        let path = temp_path("corrupt");
        cache.save_to_file(&path, encode_u64_pair).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip one payload byte (checksum mismatch), truncate, and garble
        // the magic: each must load zero entries and leave the cache empty.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        let mut short = good.clone();
        short.truncate(good.len() - 5);
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        for (label, image) in [("flipped", flipped), ("short", short), ("magic", bad_magic)] {
            std::fs::write(&path, &image).unwrap();
            let fresh: MemoCache<u64, u64> = MemoCache::new(64);
            assert_eq!(
                fresh.load_from_file(&path, decode_u64_pair).unwrap(),
                0,
                "{label}"
            );
            assert!(fresh.is_empty(), "{label}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejecting_decoder_yields_cold_start() {
        let cache: MemoCache<u64, u64> = MemoCache::new(64);
        cache.insert(1, 2);
        let path = temp_path("reject");
        cache.save_to_file(&path, encode_u64_pair).unwrap();
        let fresh: MemoCache<u64, u64> = MemoCache::new(64);
        let loaded = fresh.load_from_file(&path, |_| None::<(u64, u64)>).unwrap();
        assert_eq!(loaded, 0);
        assert!(fresh.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_respects_capacity_bound() {
        let big: MemoCache<u64, u64> = MemoCache::new(1024);
        for k in 0..200u64 {
            big.insert(k, k);
        }
        let path = temp_path("capacity");
        big.save_to_file(&path, encode_u64_pair).unwrap();
        let small: MemoCache<u64, u64> = MemoCache::new(1);
        let loaded = small.load_from_file(&path, decode_u64_pair).unwrap();
        assert_eq!(loaded, 200);
        assert!(small.len() <= small.capacity());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_mixed_load_is_consistent() {
        let cache: MemoCache<u64, u64> = MemoCache::new(1024);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = (i + t * 13) % 100;
                        assert_eq!(cache.get_or_insert_with(k, || k * 3), k * 3);
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 2000);
        assert!(cache.len() <= 100);
    }
}
