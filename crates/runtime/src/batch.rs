//! The batch-evaluation seam between optimizers and evaluation engines.
//!
//! Optimizers (MOBO prior sampling, NSGA-II generations, annealer probe
//! bursts) naturally produce *batches* of candidates whose evaluations are
//! independent; evaluation engines (the co-design `HwProblem`, software
//! explorer pools) own the thread pool and the memo cache. The
//! [`BatchEvaluator`] trait is the seam: "evaluate this slice of requests
//! and give me the responses in the same order". How the engine executes
//! — serially, on a [`crate::WorkerPool`], against a [`crate::MemoCache`],
//! or in some future remote backend — is invisible to the optimizer, which
//! is what keeps `threads = 1` and `threads = N` bitwise identical.

/// An engine that evaluates request batches, preserving order.
///
/// `&self` receivers are deliberate: engines are shared across worker
/// threads and manage interior state (caches, counters) with interior
/// mutability.
pub trait BatchEvaluator {
    /// What gets evaluated (a design `Point`, an `(accelerator, workload)`
    /// pair, a schedule...).
    type Request;

    /// The evaluation outcome.
    type Response;

    /// Evaluates every request, returning responses **in request order**.
    /// Implementations must guarantee the result is independent of worker
    /// count and scheduling.
    fn evaluate_batch(&self, batch: &[Self::Request]) -> Vec<Self::Response>;

    /// Evaluates one request (the batch-of-one degenerate case).
    fn evaluate_one(&self, request: Self::Request) -> Self::Response {
        self.evaluate_batch(std::slice::from_ref(&request))
            .pop()
            .expect("batch of one yields one response")
    }
}

/// A [`BatchEvaluator`] from a plain function, evaluated serially — the
/// reference implementation parallel engines must agree with, and a handy
/// test double.
pub struct FnEvaluator<Q, S, F: Fn(&Q) -> S> {
    f: F,
    _marker: std::marker::PhantomData<fn(&Q) -> S>,
}

impl<Q, S, F: Fn(&Q) -> S> FnEvaluator<Q, S, F> {
    /// Wraps a function.
    pub fn new(f: F) -> Self {
        FnEvaluator {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<Q, S, F: Fn(&Q) -> S> BatchEvaluator for FnEvaluator<Q, S, F> {
    type Request = Q;
    type Response = S;

    fn evaluate_batch(&self, batch: &[Q]) -> Vec<S> {
        batch.iter().map(&self.f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_evaluator_maps_in_order() {
        let eval = FnEvaluator::new(|&x: &u64| x + 1);
        assert_eq!(eval.evaluate_batch(&[1, 5, 3]), vec![2, 6, 4]);
        assert_eq!(eval.evaluate_one(9), 10);
    }
}
