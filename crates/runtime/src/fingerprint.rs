//! Stable structural fingerprints for cache keys.
//!
//! [`std::hash::Hash`] offers no stability guarantees and `DefaultHasher`
//! is explicitly allowed to change between releases, so memoization keys
//! use this explicit 64-bit FNV-1a writer instead: a type writes its
//! *semantic* fields in a fixed order, giving a fingerprint that is stable
//! for a given source tree and independent of pointer identity, `HashMap`
//! iteration order, or hasher seeding. Floats are hashed by their IEEE
//! bit pattern (`f64::to_bits`), so `-0.0 != 0.0` and `NaN` payloads
//! distinguish — exactly what "same configuration" means for a cost model.

/// A 64-bit stable fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// An incremental FNV-1a writer.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

impl Fingerprinter {
    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Fingerprinter { state: FNV_OFFSET }
    }

    /// Finishes and returns the fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }

    /// Writes raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Writes a `u64`.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Writes a `usize` (always as 64 bits, for cross-platform stability).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Writes an `i64`.
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Writes a `u32`.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Writes a bool.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_bytes(&[v as u8])
    }

    /// Writes an `f64` by IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Writes a length-prefixed string (the prefix prevents `("ab", "c")`
    /// and `("a", "bc")` from colliding).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }
}

/// Types with a stable structural fingerprint. Implementations must write
/// every field that affects evaluation results, in a fixed order.
pub trait StableFingerprint {
    /// Writes this value's semantic content into the fingerprinter.
    fn fingerprint_into(&self, fp: &mut Fingerprinter);

    /// Convenience: fingerprints this value alone.
    fn fingerprint(&self) -> Fingerprint {
        let mut fp = Fingerprinter::new();
        self.fingerprint_into(&mut fp);
        fp.finish()
    }
}

impl StableFingerprint for u64 {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_u64(*self);
    }
}

impl StableFingerprint for usize {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_usize(*self);
    }
}

impl StableFingerprint for u32 {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_u32(*self);
    }
}

impl StableFingerprint for i64 {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_i64(*self);
    }
}

impl StableFingerprint for f64 {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_f64(*self);
    }
}

impl StableFingerprint for bool {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_bool(*self);
    }
}

impl StableFingerprint for str {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(self);
    }
}

impl StableFingerprint for String {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(self);
    }
}

impl<T: StableFingerprint> StableFingerprint for [T] {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_usize(self.len());
        for item in self {
            item.fingerprint_into(fp);
        }
    }
}

impl<T: StableFingerprint> StableFingerprint for Vec<T> {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        self.as_slice().fingerprint_into(fp);
    }
}

impl<T: StableFingerprint> StableFingerprint for Option<T> {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        match self {
            None => {
                fp.write_bool(false);
            }
            Some(v) => {
                fp.write_bool(true);
                v.fingerprint_into(fp);
            }
        }
    }
}

impl<A: StableFingerprint, B: StableFingerprint> StableFingerprint for (A, B) {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        self.0.fingerprint_into(fp);
        self.1.fingerprint_into(fp);
    }
}

impl<T: StableFingerprint + ?Sized> StableFingerprint for &T {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        (**self).fingerprint_into(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_identical_fingerprints() {
        let a = (vec![1u64, 2, 3], "accel".to_string()).fingerprint();
        let b = (vec![1u64, 2, 3], "accel".to_string()).fingerprint();
        assert_eq!(a, b);
    }

    #[test]
    fn field_order_and_values_matter() {
        assert_ne!(vec![1u64, 2].fingerprint(), vec![2u64, 1].fingerprint());
        assert_ne!(1u64.fingerprint(), 2u64.fingerprint());
        assert_ne!("a".fingerprint(), "b".fingerprint());
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let ab_c = ("ab".to_string(), "c".to_string()).fingerprint();
        let a_bc = ("a".to_string(), "bc".to_string()).fingerprint();
        assert_ne!(ab_c, a_bc);
        assert_ne!(vec![1u64].fingerprint(), vec![1u64, 0].fingerprint());
    }

    #[test]
    fn floats_hash_by_bit_pattern() {
        assert_ne!((0.0f64).fingerprint(), (-0.0f64).fingerprint());
        assert_eq!((1.5f64).fingerprint(), (1.5f64).fingerprint());
    }

    #[test]
    fn option_disambiguates_none_from_default() {
        let none: Option<u64> = None;
        let zero: Option<u64> = Some(0);
        assert_ne!(none.fingerprint(), zero.fingerprint());
    }

    #[test]
    fn known_vector_is_stable_across_runs() {
        // FNV-1a of the little-endian length prefix (1u64) followed by the
        // byte 0x61 ("a"); pinned so accidental changes to the constants,
        // the length-prefix scheme, or byte order fail loudly.
        let fp = "a".fingerprint();
        assert_eq!(fp, Fingerprint(0x529a4ddc8ff56bbf));
        assert_eq!(format!("{fp}"), "529a4ddc8ff56bbf");
    }
}
