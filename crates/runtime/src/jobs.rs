//! A bounded-concurrency job scheduler for long-lived engines.
//!
//! [`WorkerPool`](crate::WorkerPool) parallelizes *within* one evaluation
//! batch; [`JobScheduler`] parallelizes *across* whole jobs — co-design
//! requests submitted to a resident engine. It owns a fixed set of
//! executor threads fed from one FIFO queue:
//!
//! * submissions never block: [`JobScheduler::spawn`] enqueues and
//!   returns; excess jobs wait for a free slot;
//! * jobs start in submission order (a free executor always takes the
//!   oldest queued job), so queued-job pickup is deterministic even
//!   though completion order is not;
//! * worker panics are contained: a panicking job poisons nothing and the
//!   executor thread survives to run the next job. Callers that need the
//!   panic re-raised should catch it inside the job closure and surface
//!   it through their own completion channel.
//!
//! Dropping the scheduler closes the queue and joins the executors, so
//! every accepted job runs to completion before the scheduler is gone.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::telemetry::Telemetry;

/// A queued unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-slot FIFO job scheduler (see the module docs).
#[derive(Debug)]
pub struct JobScheduler {
    tx: Option<Sender<Job>>,
    executors: Vec<JoinHandle<()>>,
    slots: usize,
    /// Out-of-band queue-wait observer (no-op by default).
    telemetry: Telemetry,
}

impl JobScheduler {
    /// Creates a scheduler with `slots` executor threads (minimum 1):
    /// at most `slots` jobs run concurrently, the rest queue FIFO.
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1);
        let (tx, rx) = channel::<Job>();
        let rx: Arc<Mutex<Receiver<Job>>> = Arc::new(Mutex::new(rx));
        let executors = (0..slots)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("hasco-job-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only while receiving, so a
                        // long job never blocks peers from picking up work.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match job {
                            Ok(job) => {
                                // Contain panics: the executor must survive
                                // to serve later jobs.
                                let _ = catch_unwind(AssertUnwindSafe(job));
                            }
                            Err(_) => break, // queue closed
                        }
                    })
                    .expect("spawning executor thread")
            })
            .collect();
        JobScheduler {
            tx: Some(tx),
            executors,
            slots,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle; every spawned job then records how
    /// long it waited in the queue before an executor picked it up.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The number of jobs that can run concurrently.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Enqueues a job; it starts as soon as an executor is free, in FIFO
    /// order relative to other queued jobs.
    pub fn spawn(&self, job: Job) {
        if let Some(tx) = &self.tx {
            let job = if self.telemetry.is_enabled() {
                let telemetry = self.telemetry.clone();
                // detlint-allow(wall-clock): queue-wait telemetry; the duration feeds a histogram and never reaches job results
                let queued_at = Instant::now();
                Box::new(move || {
                    telemetry.record_queue_wait(queued_at.elapsed());
                    job();
                }) as Job
            } else {
                job
            };
            // Send can only fail after the queue closed, which only
            // happens in Drop — unreachable from a live &self.
            let _ = tx.send(job);
        }
    }
}

impl Drop for JobScheduler {
    fn drop(&mut self) {
        // Close the queue, then join: accepted jobs run to completion.
        self.tx.take();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_every_job_before_drop_returns() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let scheduler = JobScheduler::new(3);
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                scheduler.spawn(Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }));
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn queued_jobs_start_in_submission_order() {
        // One slot: jobs must execute strictly in submission order.
        let scheduler = JobScheduler::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..10usize {
            let tx = tx.clone();
            scheduler.spawn(Box::new(move || {
                let _ = tx.send(i);
            }));
        }
        drop(scheduler);
        drop(tx);
        let order: Vec<usize> = rx.iter().collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn slots_bound_concurrency() {
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        {
            let scheduler = JobScheduler::new(2);
            for _ in 0..8 {
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                scheduler.spawn(Box::new(move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    running.fetch_sub(1, Ordering::SeqCst);
                }));
            }
        }
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_executor() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let scheduler = JobScheduler::new(1);
            scheduler.spawn(Box::new(|| panic!("injected")));
            let done2 = Arc::clone(&done);
            scheduler.spawn(Box::new(move || {
                done2.fetch_add(1, Ordering::Relaxed);
            }));
        }
        assert_eq!(done.load(Ordering::Relaxed), 1, "executor died on panic");
    }

    #[test]
    fn zero_slots_clamp_to_one() {
        assert_eq!(JobScheduler::new(0).slots(), 1);
    }

    #[test]
    fn queue_wait_is_recorded_per_job() {
        let telemetry = Telemetry::enabled();
        {
            let scheduler = JobScheduler::new(1).with_telemetry(telemetry.clone());
            for _ in 0..4 {
                scheduler.spawn(Box::new(|| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }));
            }
        }
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.queue_wait_ns.count, 4);
        // Jobs behind a 1ms predecessor on one slot waited at least that.
        assert!(snap.queue_wait_ns.max_ns >= 1_000_000);
    }
}
