//! Parallel evaluation runtime for the HASCO reproduction.
//!
//! The co-design loop is evaluation-bound: every hardware trial runs the
//! software explorer over every workload, and population-based optimizers
//! (NSGA-II, MOBO prior sampling) evaluate whole batches per step. This
//! crate is the shared infrastructure that turns those batches into
//! parallel work without giving up fixed-seed reproducibility:
//!
//! * [`pool::WorkerPool`] — a fixed-size worker pool whose [`WorkerPool::map`]
//!   fans a batch out to threads and reassembles results **in submission
//!   order**, so a run with `threads = 4` is bitwise identical to
//!   `threads = 1` whenever the per-item work is deterministic;
//! * [`cache::MemoCache`] — a sharded, bounded, concurrent memoization
//!   cache with hit/miss/eviction accounting ([`cache::CacheStats`]);
//! * [`fingerprint`] — stable structural hashing ([`StableFingerprint`])
//!   used to key the cache by accelerator config + workload + explorer
//!   options;
//! * [`batch::BatchEvaluator`] — the seam optimizers program against: "give
//!   me the responses for this slice of requests, in order";
//! * [`persist`] — shared warm-state image machinery (atomic replacement,
//!   checksummed framing, corruption-tolerant loading) used by the memo
//!   cache and the engine's surrogate-registry store;
//! * [`telemetry`] — out-of-band wall-clock spans, counters, gauges, and
//!   histograms ([`Telemetry`]), a side channel that observes the
//!   pipeline without ever feeding back into results.
//!
//! # Determinism contract
//!
//! Everything here preserves a simple invariant: **thread count never
//! changes results, only wall-clock time**. Batch composition must not
//! depend on `threads` (callers decide batch sizes from problem
//! parameters), [`WorkerPool::map`] returns results in input order, and
//! the memo cache only memoizes pure evaluations, so a hit returns exactly
//! what the miss would have computed.
//!
//! # Example
//!
//! ```
//! use runtime::{BatchEvaluator, MemoCache, WorkerPool};
//!
//! struct Squarer {
//!     pool: WorkerPool,
//!     cache: MemoCache<u64, u64>,
//! }
//!
//! impl BatchEvaluator for Squarer {
//!     type Request = u64;
//!     type Response = u64;
//!     fn evaluate_batch(&self, batch: &[u64]) -> Vec<u64> {
//!         self.pool.map(batch, |_, &x| self.cache.get_or_insert_with(x, || x * x))
//!     }
//! }
//!
//! let sq = Squarer { pool: WorkerPool::new(4), cache: MemoCache::new(128) };
//! assert_eq!(sq.evaluate_batch(&[3, 4, 3]), vec![9, 16, 9]);
//! assert_eq!(sq.cache.stats().hits, 1);
//! ```

pub mod batch;
pub mod cache;
pub mod fingerprint;
pub mod jobs;
pub mod persist;
pub mod pool;
pub mod telemetry;

pub use batch::BatchEvaluator;
pub use cache::{CacheStats, MemoCache};
pub use fingerprint::{Fingerprint, Fingerprinter, StableFingerprint};
pub use jobs::JobScheduler;
pub use pool::{PoolStats, WorkerPool};
pub use telemetry::{Telemetry, TelemetrySnapshot, TierRecorder, TELEMETRY_SCHEMA};

/// A point in a discrete search space (one choice index per dimension) —
/// mirrors `dse::problem::Point` so the batch seam does not depend on the
/// optimizer crate.
pub type Point = Vec<usize>;

/// Resolves a requested thread count: `0` means "use all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn resolve_threads_passthrough_and_auto() {
        assert_eq!(super::resolve_threads(3), 3);
        assert!(super::resolve_threads(0) >= 1);
    }
}
