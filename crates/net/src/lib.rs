//! Network serving for the HASCO engine: a front-end process that owns
//! the warm state, serving clients that submit work to it, and worker
//! processes that absorb the expensive evaluation batches.
//!
//! Three layers, std-only (no async runtime, no serialization crates):
//!
//! 1. **[`wire`] / [`proto`]** — a hand-rolled binary codec for every
//!    type that crosses a process boundary, carried in the same
//!    checksummed `magic ++ length ++ payload ++ fingerprint` frames the
//!    on-disk images use ([`runtime::persist`]), pointed at a socket.
//! 2. **[`server`] / [`client`]** — `hasco-serve` wraps a long-lived
//!    [`hasco::Engine`]; [`client::Client`] gives other processes the
//!    engine's submit / events / campaign / persist surface over TCP.
//! 3. **[`dispatch`] / [`worker`]** — `hasco-worker` processes register
//!    with the front-end and evaluate shards of screening/refinement
//!    batches through the [`runtime::BatchEvaluator`] seam
//!    ([`dispatch::RemoteBatchEvaluator`]).
//!
//! **The determinism contract survives the network.** A served run is
//! bit-identical to an in-process run of the same request — solutions,
//! `RunStats`, and event streams — at any worker count, including
//! workers dying mid-batch. The argument is short: remote work is
//! restricted to items whose result is a pure function of the shipped
//! request (fresh explorer, fresh RNG, backend rebuilt from its
//! parameters — see [`hasco::remote`]), every item has a fixed
//! reassembly slot, and anything the fleet fails to answer is evaluated
//! in-process by the very same function. Sharding and worker death only
//! decide *where* each pure function runs.

pub mod client;
pub mod dispatch;
pub mod proto;
pub mod server;
pub mod wire;
pub mod worker;

pub use client::{Client, RemoteJob};
pub use dispatch::{RemoteBatchEvaluator, WorkerRegistry};
pub use server::{Server, ServerOptions};
pub use worker::{WorkerHandle, WorkerOptions};
