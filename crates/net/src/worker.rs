//! The remote evaluation worker: a loop that connects to a serving
//! front-end, registers, and answers `BatchRequest` frames.
//!
//! A worker holds **no state between batches** — every item it receives
//! carries the full recipe (backend kind, technology parameters, seed,
//! explorer options, workload, candidate config) and
//! [`RemoteEvalRequest::evaluate`] rebuilds a fresh explorer per item,
//! exactly like the in-process evaluation closure. That statelessness is
//! what lets the front-end re-dispatch a dead worker's items anywhere
//! (including locally) without changing a single bit of the run.
//!
//! Items within one shard are evaluated serially in shard order; the
//! parallelism of the system is across workers, not within one.

use std::io;
use std::net::TcpStream;
use std::thread::{self, JoinHandle};

use hasco::remote::RemoteEvalRequest;

use crate::proto::{self, Msg, PROTOCOL};

/// Options for one worker process.
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Test hook: serve this many `BatchRequest`s, then drop the
    /// connection *without replying* to the next one — a deterministic
    /// stand-in for "worker died mid-batch". `None` serves forever.
    pub die_after_batches: Option<u64>,
}

/// Connects to `addr`, registers, and serves until the front-end
/// releases the worker (`Shutdown`) or closes the connection. Returns
/// the number of batches served.
pub fn run(addr: &str, opts: &WorkerOptions) -> io::Result<u64> {
    let mut stream = TcpStream::connect(addr)?;
    proto::send(
        &mut stream,
        &Msg::WorkerHello {
            protocol: PROTOCOL.to_string(),
        },
    )?;
    match proto::recv_expect(&mut stream)? {
        Msg::HelloOk => {}
        Msg::Error { message } => {
            return Err(io::Error::new(io::ErrorKind::ConnectionRefused, message))
        }
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "front-end sent a non-hello reply",
            ))
        }
    }

    let mut served = 0u64;
    loop {
        let msg = match proto::recv(&mut stream)? {
            Some(msg) => msg,
            // Front-end went away between frames: a clean exit.
            None => return Ok(served),
        };
        match msg {
            Msg::BatchRequest { batch, items } => {
                if opts.die_after_batches == Some(served) {
                    // Simulated mid-batch death: the request was read but
                    // no reply will ever come. Dropping the stream makes
                    // the front-end's pending read fail, which is exactly
                    // what a SIGKILL'd worker produces.
                    return Ok(served);
                }
                let results: Vec<_> = items.iter().map(RemoteEvalRequest::evaluate).collect();
                proto::send(&mut stream, &Msg::BatchResult { batch, results })?;
                served += 1;
            }
            Msg::Ping { nonce } => proto::send(&mut stream, &Msg::Pong { nonce })?,
            Msg::Shutdown => {
                let _ = proto::send(&mut stream, &Msg::ShutdownOk);
                return Ok(served);
            }
            _ => {
                let _ = proto::send(
                    &mut stream,
                    &Msg::Error {
                        message: "worker received a non-worker message".to_string(),
                    },
                );
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "front-end sent a non-worker message",
                ));
            }
        }
    }
}

/// A worker running on a background thread of this process. Tests,
/// examples, and the CI smoke use these instead of separate OS processes
/// where convenient; `hasco-worker` wraps [`run`] for real deployments.
#[derive(Debug)]
pub struct WorkerHandle {
    join: Option<JoinHandle<io::Result<u64>>>,
}

impl WorkerHandle {
    /// Spawns a worker thread serving `addr` until released.
    pub fn spawn(addr: &str) -> Self {
        Self::spawn_with(addr, WorkerOptions::default())
    }

    /// Spawns a worker that dies without replying after `n` served
    /// batches — the deterministic mid-batch-death fixture.
    pub fn spawn_flaky(addr: &str, die_after_batches: u64) -> Self {
        Self::spawn_with(
            addr,
            WorkerOptions {
                die_after_batches: Some(die_after_batches),
            },
        )
    }

    fn spawn_with(addr: &str, opts: WorkerOptions) -> Self {
        let addr = addr.to_string();
        // The worker thread only answers network frames with pure
        // per-item results; nothing it computes depends on scheduling,
        // and the dispatcher reassembles results by submission index.
        // detlint-allow(ambient): worker loop computes pure per-item functions
        let join = thread::spawn(move || run(&addr, &opts));
        WorkerHandle { join: Some(join) }
    }

    /// Waits for the worker to exit; returns batches served.
    pub fn join(mut self) -> io::Result<u64> {
        // `join` consumes self, so the slot is only ever empty if Drop
        // ran first — report it instead of panicking the caller.
        let Some(handle) = self.join.take() else {
            return Err(io::Error::other("worker handle already joined"));
        };
        handle
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("worker thread panicked")))
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        // Detached on drop: the thread exits when the front-end releases
        // it or the connection closes.
        let _ = self.join.take();
    }
}
