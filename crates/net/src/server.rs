//! The serving front-end: a long-lived [`Engine`] behind a TCP listener.
//!
//! One serving process owns the warm state that makes co-design cheap —
//! the shared memo store and the trained surrogate registry — and makes
//! it reachable from other processes: serving clients submit jobs and
//! campaigns over [`crate::proto`] frames, evaluation workers register
//! and absorb expensive screening/refinement batches through the
//! [`crate::dispatch::RemoteBatchEvaluator`] installed into the engine.
//!
//! Connection supervision is deliberately boring: one thread per
//! connection, and a client that goes away mid-stream gets its job
//! cancelled (best effort — a cancel that loses the race to completion
//! is a no-op and the solution still lands in the warm store). Shutdown
//! stops admitting connections, releases the worker fleet, and drains
//! in-flight handlers up to a bounded grace period.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

use hasco::engine::{Engine, EngineConfig, JobHandle};
use hasco::HascoError;

use crate::dispatch::{RemoteBatchEvaluator, WorkerRegistry, DEFAULT_EXCHANGE_TIMEOUT};
use crate::proto::{self, Msg, PROTOCOL};

/// Tuning knobs of one serving process.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Hold submitted jobs until this many workers are registered.
    /// `0` (the default) runs immediately, evaluating in-process until
    /// workers show up. The gate makes "N-worker run" reproducible from
    /// scripts that start the fleet asynchronously — results never
    /// depend on it (see the dispatch module docs), only throughput.
    pub min_workers: usize,
    /// Socket timeout for one worker batch exchange.
    pub exchange_timeout: Duration,
    /// Socket timeout for writes to serving clients (event streams).
    pub client_write_timeout: Duration,
    /// Heartbeat period for idle-worker liveness sweeps.
    pub heartbeat_period: Duration,
    /// Socket timeout for one heartbeat ping/pong.
    pub heartbeat_timeout: Duration,
    /// Grace period for in-flight connections at shutdown.
    pub drain_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            min_workers: 0,
            exchange_timeout: DEFAULT_EXCHANGE_TIMEOUT,
            client_write_timeout: Duration::from_secs(60),
            heartbeat_period: Duration::from_secs(10),
            heartbeat_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// Locks a supervision structure (connection counters, the job table,
/// the stop latch), recovering from poisoning: every one of them is
/// updated in single whole-value steps, and a handler that panicked
/// must not take the server's shutdown path or cancel routing down
/// with it.
fn lock_live<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct ServerInner {
    engine: Engine,
    registry: Arc<WorkerRegistry>,
    opts: ServerOptions,
    addr: SocketAddr,
    shutdown: AtomicBool,
    /// In-flight connection handlers, guarded for the drain condvar.
    active: Mutex<usize>,
    drained: Condvar,
    /// Running jobs by engine id, so `Cancel` frames (which arrive on
    /// fresh connections) can reach them.
    jobs: Mutex<BTreeMap<u64, JobHandle>>,
    /// Latched true once `shutdown` finished draining.
    stopped: Mutex<bool>,
    stopped_cv: Condvar,
}

/// A running serving front-end. Dropping the handle does **not** stop
/// the server; call [`Server::shutdown`] (or send a `Shutdown` frame,
/// e.g. via [`crate::client::Client::shutdown_server`]).
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`), installs remote dispatch
    /// into `config`, starts the engine plus the accept and heartbeat
    /// threads, and returns immediately.
    pub fn bind(addr: &str, config: EngineConfig, opts: ServerOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let registry = Arc::new(WorkerRegistry::new());
        let evaluator = RemoteBatchEvaluator::new(Arc::clone(&registry))
            .with_exchange_timeout(opts.exchange_timeout);
        let engine = Engine::new(config.with_remote_evaluator(Arc::new(evaluator)));
        let inner = Arc::new(ServerInner {
            engine,
            registry,
            opts,
            addr: local,
            shutdown: AtomicBool::new(false),
            active: Mutex::new(0),
            drained: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            stopped: Mutex::new(false),
            stopped_cv: Condvar::new(),
        });

        {
            let inner = Arc::clone(&inner);
            // The accept loop only routes connections; every
            // result-bearing computation happens in the engine under its
            // own determinism discipline.
            // detlint-allow(ambient): accept loop routes connections, computes nothing
            thread::spawn(move || accept_loop(listener, inner));
        }
        {
            let inner = Arc::clone(&inner);
            // Liveness sweeps drop dead worker connections; dispatch
            // treats a dropped worker and a never-registered one
            // identically, so sweep timing cannot reach results.
            // detlint-allow(ambient): heartbeat only drops dead connections
            thread::spawn(move || heartbeat_loop(inner));
        }
        Ok(Server { inner })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Currently registered workers.
    pub fn workers(&self) -> usize {
        self.inner.registry.live()
    }

    /// The engine this server fronts (tests compare warm state).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Stops admitting connections, releases the worker fleet, persists
    /// the engine's warm state (best effort), and waits up to the drain
    /// timeout for in-flight handlers. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the blocking accept loop with a no-op connection.
        let _ = TcpStream::connect(self.inner.addr);
        self.inner.registry.release_all();
        let _ = self.inner.engine.persist();

        // Bounded drain without a wall clock: each pass waits up to the
        // full grace period and a timed-out pass gives up. A handler
        // finishing notifies the condvar, so the common case exits
        // immediately; only a genuine straggler costs the grace period.
        let mut active = lock_live(&self.inner.active);
        while *active > 0 {
            let (guard, wait) = self
                .inner
                .drained
                .wait_timeout(active, self.inner.opts.drain_timeout)
                .unwrap_or_else(PoisonError::into_inner);
            active = guard;
            if wait.timed_out() {
                break;
            }
        }
        drop(active);
        *lock_live(&self.inner.stopped) = true;
        self.inner.stopped_cv.notify_all();
    }

    /// Blocks until [`Server::shutdown`] ran to completion (locally or
    /// triggered by a client's `Shutdown` frame). The serve binary's
    /// main thread lives here.
    pub fn wait_for_shutdown(&self) {
        let mut stopped = lock_live(&self.inner.stopped);
        while !*stopped {
            stopped = self
                .inner
                .stopped_cv
                .wait(stopped)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<ServerInner>) {
    for stream in listener.incoming() {
        // SeqCst pairs with the swap in `shutdown`: an accept woken by
        // the dummy self-connect must observe the flag and exit.
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        {
            let mut active = lock_live(&inner.active);
            *active += 1;
        }
        let inner = Arc::clone(&inner);
        // One handler per connection; handlers only relay engine
        // results over the socket, never compute them.
        // detlint-allow(ambient): connection handlers relay, never compute
        thread::spawn(move || {
            handle_connection(stream, &Arc::clone(&inner));
            let mut active = lock_live(&inner.active);
            *active = active.saturating_sub(1);
            if *active == 0 {
                inner.drained.notify_all();
            }
        });
    }
}

fn heartbeat_loop(inner: Arc<ServerInner>) {
    let mut nonce = 0u64;
    loop {
        thread::sleep(inner.opts.heartbeat_period);
        // SeqCst pairs with the swap in `shutdown`: the next tick after
        // shutdown must see the flag rather than sweep released workers.
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        nonce += 1;
        inner.registry.sweep(nonce, inner.opts.heartbeat_timeout);
    }
}

fn handle_connection(mut stream: TcpStream, inner: &Arc<ServerInner>) {
    let hello = match proto::recv(&mut stream) {
        Ok(Some(msg)) => msg,
        _ => return,
    };
    match hello {
        Msg::WorkerHello { protocol } => {
            if protocol != PROTOCOL {
                let _ = proto::send(&mut stream, &protocol_mismatch(&protocol));
                return;
            }
            if proto::send(&mut stream, &Msg::HelloOk).is_ok() {
                // Ownership of the stream moves to the registry; this
                // handler is done (dispatch threads do the talking).
                inner.registry.register(stream);
            }
        }
        Msg::ClientHello { protocol } => {
            if protocol != PROTOCOL {
                let _ = proto::send(&mut stream, &protocol_mismatch(&protocol));
                return;
            }
            if proto::send(&mut stream, &Msg::HelloOk).is_err() {
                return;
            }
            serve_client(stream, inner);
        }
        _ => {
            let _ = proto::send(
                &mut stream,
                &Msg::Error {
                    message: "expected a hello frame".to_string(),
                },
            );
        }
    }
}

fn protocol_mismatch(theirs: &str) -> Msg {
    Msg::Error {
        message: format!("protocol mismatch: server speaks {PROTOCOL}, peer sent {theirs}"),
    }
}

/// Handles the one request a serving client sends after its hello.
fn serve_client(mut stream: TcpStream, inner: &Arc<ServerInner>) {
    let request = match proto::recv(&mut stream) {
        Ok(Some(msg)) => msg,
        _ => return,
    };
    let _ = stream.set_write_timeout(Some(inner.opts.client_write_timeout));
    match request {
        Msg::Submit { request } => serve_submit(stream, inner, request),
        Msg::CampaignPlan { requests } => serve_campaign(stream, inner, requests),
        Msg::Cancel { job_id } => {
            let found = {
                let jobs = lock_live(&inner.jobs);
                jobs.get(&job_id).map(JobHandle::cancel).is_some()
            };
            let _ = proto::send(&mut stream, &Msg::CancelOk { found });
        }
        Msg::Persist => {
            let reply = match inner.engine.persist() {
                Ok(entries) => Msg::PersistOk { entries },
                Err(e) => Msg::Error {
                    message: format!("persist failed: {e}"),
                },
            };
            let _ = proto::send(&mut stream, &reply);
        }
        Msg::Ping { nonce } => {
            let _ = proto::send(&mut stream, &Msg::Pong { nonce });
        }
        Msg::Shutdown => {
            let _ = proto::send(&mut stream, &Msg::ShutdownOk);
            // Re-enter the public shutdown path on a detached thread: it
            // waits for active handlers (this one included) to drain.
            let server = Server {
                inner: Arc::clone(inner),
            };
            // detlint-allow(ambient): shutdown choreography only, no results flow here
            thread::spawn(move || server.shutdown());
        }
        _ => {
            let _ = proto::send(
                &mut stream,
                &Msg::Error {
                    message: "expected a request frame".to_string(),
                },
            );
        }
    }
}

fn serve_submit(mut stream: TcpStream, inner: &ServerInner, request: hasco::CoDesignRequest) {
    if !wait_for_workers(inner) {
        let _ = proto::send(&mut stream, &shutting_down());
        return;
    }
    let handle = match inner.engine.submit(request) {
        Ok(handle) => handle,
        Err(e) => {
            let _ = proto::send(&mut stream, &Msg::Done { result: Err(e) });
            return;
        }
    };
    let job_id = handle.id();
    lock_live(&inner.jobs).insert(job_id, handle.clone());
    if proto::send(&mut stream, &Msg::Accepted { job_id }).is_err() {
        handle.cancel();
        let _ = handle.wait();
        lock_live(&inner.jobs).remove(&job_id);
        return;
    }
    // Stream events live. A client that stops reading (or disconnects)
    // turns into a send error here; supervision cancels its job.
    let mut client_lost = false;
    for event in handle.events() {
        if proto::send(&mut stream, &Msg::Event { event }).is_err() {
            client_lost = true;
            handle.cancel();
            break;
        }
    }
    // `wait` also publishes the job's warm state into the engine — the
    // serving process observes every job it runs.
    let result = handle.wait();
    lock_live(&inner.jobs).remove(&job_id);
    if !client_lost {
        let _ = proto::send(&mut stream, &Msg::Done { result });
    }
}

fn serve_campaign(
    mut stream: TcpStream,
    inner: &ServerInner,
    requests: Vec<hasco::CoDesignRequest>,
) {
    if !wait_for_workers(inner) {
        let _ = proto::send(&mut stream, &shutting_down());
        return;
    }
    match inner.engine.campaign_events(requests) {
        Ok((outcomes, events)) => {
            for event in events {
                if proto::send(&mut stream, &Msg::Campaign { event }).is_err() {
                    // Client gone; the campaign already ran to
                    // completion (campaign_events is synchronous), so
                    // there is nothing to cancel — just stop relaying.
                    return;
                }
            }
            let _ = proto::send(
                &mut stream,
                &Msg::CampaignDone {
                    result: Ok(outcomes),
                },
            );
        }
        Err(e) => {
            let _ = proto::send(&mut stream, &Msg::CampaignDone { result: Err(e) });
        }
    }
}

fn shutting_down() -> Msg {
    Msg::Done {
        result: Err(HascoError::Transport("server is shutting down".to_string())),
    }
}

/// Blocks until the worker gate is satisfied (or shutdown). Returns
/// false when the server is shutting down.
fn wait_for_workers(inner: &ServerInner) -> bool {
    loop {
        // SeqCst pairs with the swap in `shutdown`: a gated job must
        // observe the flag so drain never waits on a parked handler.
        if inner.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        if inner.registry.live() >= inner.opts.min_workers {
            return true;
        }
        thread::sleep(Duration::from_millis(25));
    }
}
