//! The framed message protocol spoken between clients, workers, and the
//! serving front-end.
//!
//! Every message is one [`runtime::persist`] frame on the stream:
//! `magic ++ payload-length ++ payload ++ fingerprint-checksum`, exactly
//! the discipline the on-disk images use, pointed at a socket instead of
//! a file. The payload is a one-byte message tag followed by the
//! [`Wire`](crate::wire::Wire)-encoded fields. A frame that fails the
//! checksum, overruns the payload bound, or decodes with leftover bytes
//! is a protocol error — the connection is dropped, never "repaired".
//!
//! Both ends begin with a hello that carries [`PROTOCOL`]; a version
//! mismatch is rejected before any work is exchanged.

use std::io::{self, Read, Write};

use accel_model::Metrics;
use hasco::engine::{CampaignOutcome, CoDesignRequest};
use hasco::event::{CampaignEvent, RunEvent};
use hasco::remote::RemoteEvalRequest;
use hasco::solution::Solution;
use hasco::HascoError;
use runtime::persist;

use crate::wire::{from_bytes, Reader, Wire};

/// Frame magic for network frames (distinct from every on-disk image).
pub const FRAME_MAGIC: &[u8; 8] = b"HASCONT1";

/// Protocol version string exchanged in the hello handshake. Bump on any
/// wire-format change — there is no cross-version negotiation.
pub const PROTOCOL: &str = "HASCONET1";

/// Upper bound on one frame's payload. Solutions and event frames are
/// kilobytes; batch frames grow with the design-point batch but stay far
/// below this. The bound exists so a corrupt or hostile length field
/// cannot drive allocation.
pub const MAX_PAYLOAD: u64 = 256 * 1024 * 1024;

/// One protocol message.
#[derive(Debug)]
pub enum Msg {
    /// First frame from a serving client; `protocol` must equal
    /// [`PROTOCOL`].
    ClientHello {
        /// The client's protocol version string.
        protocol: String,
    },
    /// First frame from an evaluation worker offering its capacity.
    WorkerHello {
        /// The worker's protocol version string.
        protocol: String,
    },
    /// Handshake accepted.
    HelloOk,
    /// Client → server: run one co-design job.
    Submit {
        /// The full request, bit-identical to an in-process submit.
        request: CoDesignRequest,
    },
    /// Server → client: the job was admitted.
    Accepted {
        /// The engine-assigned job id (usable in [`Msg::Cancel`]).
        job_id: u64,
    },
    /// Server → client: one live [`RunEvent`] of the submitted job.
    Event {
        /// The forwarded event.
        event: RunEvent,
    },
    /// Server → client: terminal frame of a submitted job.
    Done {
        /// The job's outcome, exactly what `JobHandle::wait` returns.
        result: Result<Solution, HascoError>,
    },
    /// Client → server (fresh connection): cancel a running job.
    Cancel {
        /// The id from [`Msg::Accepted`].
        job_id: u64,
    },
    /// Server → client: cancel processed.
    CancelOk {
        /// Whether the job was still known to the server.
        found: bool,
    },
    /// Client → server: run a whole campaign matrix.
    CampaignPlan {
        /// The scenario requests, in matrix order.
        requests: Vec<CoDesignRequest>,
    },
    /// Server → client: one live [`CampaignEvent`].
    Campaign {
        /// The forwarded event.
        event: CampaignEvent,
    },
    /// Server → client: terminal frame of a campaign.
    CampaignDone {
        /// The outcomes, exactly what `Engine::campaign` returns.
        result: Result<Vec<CampaignOutcome>, HascoError>,
    },
    /// Client → server: persist the serving engine's warm state now.
    Persist,
    /// Server → client: persist finished.
    PersistOk {
        /// Memo-cache entries written (0 when no store is configured).
        entries: u64,
    },
    /// Server → worker: evaluate a shard of design points.
    BatchRequest {
        /// Server-side dispatch sequence number, echoed in the reply.
        batch: u64,
        /// The shard, in submission order.
        items: Vec<RemoteEvalRequest>,
    },
    /// Worker → server: the shard's results, index-aligned with the
    /// request items.
    BatchResult {
        /// Echo of [`Msg::BatchRequest::batch`].
        batch: u64,
        /// One result per requested item, in order.
        results: Vec<Option<Metrics>>,
    },
    /// Liveness probe (server → worker between batches).
    Ping {
        /// Opaque nonce echoed back.
        nonce: u64,
    },
    /// Liveness reply.
    Pong {
        /// Echo of the probe nonce.
        nonce: u64,
    },
    /// Client → server: stop accepting work, drain, and exit.
    Shutdown,
    /// Server → peer: shutdown acknowledged / worker released.
    ShutdownOk,
    /// Either direction: the peer violated the protocol or the request
    /// failed before becoming a job. The connection closes after this.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Wire for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::ClientHello { protocol } => {
                out.push(0);
                protocol.encode(out);
            }
            Msg::WorkerHello { protocol } => {
                out.push(1);
                protocol.encode(out);
            }
            Msg::HelloOk => out.push(2),
            Msg::Submit { request } => {
                out.push(3);
                request.encode(out);
            }
            Msg::Accepted { job_id } => {
                out.push(4);
                job_id.encode(out);
            }
            Msg::Event { event } => {
                out.push(5);
                event.encode(out);
            }
            Msg::Done { result } => {
                out.push(6);
                result.encode(out);
            }
            Msg::Cancel { job_id } => {
                out.push(7);
                job_id.encode(out);
            }
            Msg::CancelOk { found } => {
                out.push(8);
                found.encode(out);
            }
            Msg::CampaignPlan { requests } => {
                out.push(9);
                requests.encode(out);
            }
            Msg::Campaign { event } => {
                out.push(10);
                event.encode(out);
            }
            Msg::CampaignDone { result } => {
                out.push(11);
                result.encode(out);
            }
            Msg::Persist => out.push(12),
            Msg::PersistOk { entries } => {
                out.push(13);
                entries.encode(out);
            }
            Msg::BatchRequest { batch, items } => {
                out.push(14);
                batch.encode(out);
                items.encode(out);
            }
            Msg::BatchResult { batch, results } => {
                out.push(15);
                batch.encode(out);
                results.encode(out);
            }
            Msg::Ping { nonce } => {
                out.push(16);
                nonce.encode(out);
            }
            Msg::Pong { nonce } => {
                out.push(17);
                nonce.encode(out);
            }
            Msg::Shutdown => out.push(18),
            Msg::ShutdownOk => out.push(19),
            Msg::Error { message } => {
                out.push(20);
                message.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(match u8::decode(r)? {
            0 => Msg::ClientHello {
                protocol: Wire::decode(r)?,
            },
            1 => Msg::WorkerHello {
                protocol: Wire::decode(r)?,
            },
            2 => Msg::HelloOk,
            3 => Msg::Submit {
                request: Wire::decode(r)?,
            },
            4 => Msg::Accepted {
                job_id: Wire::decode(r)?,
            },
            5 => Msg::Event {
                event: Wire::decode(r)?,
            },
            6 => Msg::Done {
                result: Wire::decode(r)?,
            },
            7 => Msg::Cancel {
                job_id: Wire::decode(r)?,
            },
            8 => Msg::CancelOk {
                found: Wire::decode(r)?,
            },
            9 => Msg::CampaignPlan {
                requests: Wire::decode(r)?,
            },
            10 => Msg::Campaign {
                event: Wire::decode(r)?,
            },
            11 => Msg::CampaignDone {
                result: Wire::decode(r)?,
            },
            12 => Msg::Persist,
            13 => Msg::PersistOk {
                entries: Wire::decode(r)?,
            },
            14 => Msg::BatchRequest {
                batch: Wire::decode(r)?,
                items: Wire::decode(r)?,
            },
            15 => Msg::BatchResult {
                batch: Wire::decode(r)?,
                results: Wire::decode(r)?,
            },
            16 => Msg::Ping {
                nonce: Wire::decode(r)?,
            },
            17 => Msg::Pong {
                nonce: Wire::decode(r)?,
            },
            18 => Msg::Shutdown,
            19 => Msg::ShutdownOk,
            20 => Msg::Error {
                message: Wire::decode(r)?,
            },
            _ => return None,
        })
    }
}

/// Writes one message as a checksummed frame and flushes.
pub fn send<W: Write>(w: &mut W, msg: &Msg) -> io::Result<()> {
    let payload = crate::wire::to_bytes(msg);
    persist::write_frame(w, FRAME_MAGIC, &payload)
}

/// Reads one message. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); a truncated frame, checksum mismatch, or
/// undecodable payload is an error.
pub fn recv<R: Read>(r: &mut R) -> io::Result<Option<Msg>> {
    let Some(payload) = persist::read_frame(r, FRAME_MAGIC, MAX_PAYLOAD)? else {
        return Ok(None);
    };
    match from_bytes::<Msg>(&payload) {
        Some(msg) => Ok(Some(msg)),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "undecodable protocol message",
        )),
    }
}

/// Reads one message, treating end-of-stream as an error. For points in
/// a conversation where the peer owes us a reply.
pub fn recv_expect<R: Read>(r: &mut R) -> io::Result<Msg> {
    recv(r)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-conversation"))
}

/// Maps a transport-layer failure into the engine's error vocabulary.
pub fn transport_err(context: &str, err: &io::Error) -> HascoError {
    HascoError::Transport(format!("{context}: {err}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip_through_frames() {
        let mut stream = Vec::new();
        send(
            &mut stream,
            &Msg::ClientHello {
                protocol: PROTOCOL.to_string(),
            },
        )
        .unwrap();
        send(&mut stream, &Msg::Ping { nonce: 7 }).unwrap();
        send(&mut stream, &Msg::Shutdown).unwrap();

        let mut r = &stream[..];
        assert!(matches!(
            recv(&mut r).unwrap(),
            Some(Msg::ClientHello { protocol }) if protocol == PROTOCOL
        ));
        assert!(matches!(
            recv(&mut r).unwrap(),
            Some(Msg::Ping { nonce: 7 })
        ));
        assert!(matches!(recv(&mut r).unwrap(), Some(Msg::Shutdown)));
        // Clean end-of-stream after the last frame.
        assert!(recv(&mut r).unwrap().is_none());
        assert!(recv_expect(&mut r).is_err());
    }

    #[test]
    fn corrupt_frames_are_errors_not_messages() {
        let mut stream = Vec::new();
        send(&mut stream, &Msg::Ping { nonce: 1 }).unwrap();
        // Flip one payload byte: checksum mismatch.
        let mid = stream.len() - 9;
        stream[mid] ^= 0xff;
        assert!(recv(&mut &stream[..]).is_err());

        // Truncated mid-frame: UnexpectedEof, not a clean None.
        let mut stream = Vec::new();
        send(&mut stream, &Msg::Shutdown).unwrap();
        let cut = &stream[..stream.len() - 3];
        assert_eq!(
            recv(&mut &cut[..]).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn valid_frame_with_unknown_tag_is_invalid_data() {
        let mut stream = Vec::new();
        persist::write_frame(&mut stream, FRAME_MAGIC, &[200u8]).unwrap();
        assert_eq!(
            recv(&mut &stream[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
