//! The serving client: a thin blocking façade that makes a remote
//! engine feel like [`hasco::Engine`].
//!
//! A [`Client`] is just an address — every operation opens a fresh
//! connection, completes the hello handshake, and speaks one
//! request/response (or request/stream) conversation. There is no
//! connection pooling to supervise and no shared mutable state; the
//! warm state lives server-side, which is the whole point of serving.
//!
//! Everything a transport can get wrong surfaces as
//! [`HascoError::Transport`]; errors the *engine* produced come back as
//! their original variants, so a caller cannot tell a served run from an
//! in-process one by its error shapes either.

use std::net::TcpStream;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, PoisonError};

use hasco::engine::{CampaignOutcome, CoDesignRequest};
use hasco::event::{CampaignEvents, RunEvent};
use hasco::solution::Solution;
use hasco::HascoError;

use crate::proto::{self, transport_err, Msg, PROTOCOL};

/// A handle to a serving front-end at a fixed address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// Builds a client and verifies the server is reachable and speaks
    /// our protocol (one hello round trip).
    ///
    /// # Errors
    /// [`HascoError::Transport`] when the server is unreachable or
    /// speaks a different protocol version.
    pub fn connect(addr: impl Into<String>) -> Result<Client, HascoError> {
        let client = Client { addr: addr.into() };
        drop(client.open()?);
        Ok(client)
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Opens a fresh connection and completes the client hello.
    fn open(&self) -> Result<TcpStream, HascoError> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| transport_err(&format!("connect {}", self.addr), &e))?;
        proto::send(
            &mut stream,
            &Msg::ClientHello {
                protocol: PROTOCOL.to_string(),
            },
        )
        .map_err(|e| transport_err("hello send", &e))?;
        match proto::recv_expect(&mut stream).map_err(|e| transport_err("hello recv", &e))? {
            Msg::HelloOk => Ok(stream),
            Msg::Error { message } => Err(HascoError::Transport(message)),
            _ => Err(HascoError::Transport(
                "server sent a non-hello reply".to_string(),
            )),
        }
    }

    /// Submits one job; returns a handle streaming its events live.
    ///
    /// # Errors
    /// [`HascoError::Transport`] on connection failure; validation
    /// errors surface from [`RemoteJob::wait`], exactly like
    /// [`hasco::Engine::submit`] surfaces them from the handle.
    pub fn submit(&self, request: CoDesignRequest) -> Result<RemoteJob, HascoError> {
        let mut stream = self.open()?;
        proto::send(&mut stream, &Msg::Submit { request })
            .map_err(|e| transport_err("submit send", &e))?;
        match proto::recv_expect(&mut stream).map_err(|e| transport_err("submit recv", &e))? {
            Msg::Accepted { job_id } => Ok(RemoteJob {
                addr: self.addr.clone(),
                job_id,
                shared: Arc::new(Mutex::new(JobShared {
                    stream: Some(stream),
                    result: None,
                })),
            }),
            // A rejected submission (validation error) arrives as an
            // immediate Done frame; hand back a pre-resolved job so the
            // caller's events()/wait() flow is uniform.
            Msg::Done { result } => Ok(RemoteJob {
                addr: self.addr.clone(),
                job_id: u64::MAX,
                shared: Arc::new(Mutex::new(JobShared {
                    stream: None,
                    result: Some(result),
                })),
            }),
            Msg::Error { message } => Err(HascoError::Transport(message)),
            _ => Err(HascoError::Transport(
                "server sent a non-submit reply".to_string(),
            )),
        }
    }

    /// Runs a campaign matrix to completion, discarding progress events.
    ///
    /// # Errors
    /// The campaign's own error, or [`HascoError::Transport`].
    pub fn campaign(
        &self,
        requests: Vec<CoDesignRequest>,
    ) -> Result<Vec<CampaignOutcome>, HascoError> {
        self.campaign_events(requests).map(|(outcomes, _)| outcomes)
    }

    /// [`Client::campaign`] with the aggregate event stream. Mirrors
    /// [`hasco::Engine::campaign_events`]: returns after the campaign
    /// completed, with the full observation-ordered stream buffered.
    ///
    /// # Errors
    /// The campaign's own error, or [`HascoError::Transport`].
    pub fn campaign_events(
        &self,
        requests: Vec<CoDesignRequest>,
    ) -> Result<(Vec<CampaignOutcome>, CampaignEvents), HascoError> {
        let mut stream = self.open()?;
        proto::send(&mut stream, &Msg::CampaignPlan { requests })
            .map_err(|e| transport_err("campaign send", &e))?;
        let (tx, rx) = channel();
        loop {
            match proto::recv_expect(&mut stream).map_err(|e| transport_err("campaign recv", &e))? {
                Msg::Campaign { event } => {
                    let _ = tx.send(event);
                }
                Msg::CampaignDone { result } => {
                    drop(tx);
                    return result.map(|outcomes| (outcomes, CampaignEvents::live(rx)));
                }
                Msg::Error { message } => return Err(HascoError::Transport(message)),
                _ => {
                    return Err(HascoError::Transport(
                        "server sent a non-campaign frame".to_string(),
                    ))
                }
            }
        }
    }

    /// Asks the server to persist its warm state; returns memo entries
    /// written.
    ///
    /// # Errors
    /// [`HascoError::Transport`] on connection or server-side failure.
    pub fn persist(&self) -> Result<u64, HascoError> {
        match self.round_trip(&Msg::Persist)? {
            Msg::PersistOk { entries } => Ok(entries),
            Msg::Error { message } => Err(HascoError::Transport(message)),
            _ => Err(HascoError::Transport(
                "server sent a non-persist reply".to_string(),
            )),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// [`HascoError::Transport`] when the server is gone.
    pub fn ping(&self) -> Result<(), HascoError> {
        match self.round_trip(&Msg::Ping { nonce: 1 })? {
            Msg::Pong { nonce: 1 } => Ok(()),
            _ => Err(HascoError::Transport("bad pong".to_string())),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    /// [`HascoError::Transport`] when the server is already gone.
    pub fn shutdown_server(&self) -> Result<(), HascoError> {
        match self.round_trip(&Msg::Shutdown)? {
            Msg::ShutdownOk => Ok(()),
            _ => Err(HascoError::Transport(
                "server sent a non-shutdown reply".to_string(),
            )),
        }
    }

    fn round_trip(&self, msg: &Msg) -> Result<Msg, HascoError> {
        let mut stream = self.open()?;
        proto::send(&mut stream, msg).map_err(|e| transport_err("request send", &e))?;
        proto::recv_expect(&mut stream).map_err(|e| transport_err("request recv", &e))
    }
}

#[derive(Debug)]
struct JobShared {
    /// The live connection; `None` once the terminal frame arrived (or
    /// the job came pre-resolved).
    stream: Option<TcpStream>,
    result: Option<Result<Solution, HascoError>>,
}

impl JobShared {
    /// Reads frames until the next event. Returns `None` at (and after)
    /// the terminal frame, stashing the result.
    fn next_event(&mut self) -> Option<RunEvent> {
        loop {
            let stream = self.stream.as_mut()?;
            match proto::recv_expect(stream) {
                Ok(Msg::Event { event }) => return Some(event),
                Ok(Msg::Done { result }) => {
                    self.result = Some(result);
                    self.stream = None;
                    return None;
                }
                Ok(Msg::Error { message }) => {
                    self.result = Some(Err(HascoError::Transport(message)));
                    self.stream = None;
                    return None;
                }
                Ok(_) => continue,
                Err(e) => {
                    self.result = Some(Err(transport_err("event stream", &e)));
                    self.stream = None;
                    return None;
                }
            }
        }
    }
}

/// A handle to a job running on a serving front-end. The remote
/// counterpart of [`hasco::engine::JobHandle`]: same `id` / `events` /
/// `wait` / `cancel` surface, same event stream bits, same result bits.
#[derive(Debug, Clone)]
pub struct RemoteJob {
    addr: String,
    job_id: u64,
    shared: Arc<Mutex<JobShared>>,
}

impl RemoteJob {
    /// The server-side job id.
    pub fn id(&self) -> u64 {
        self.job_id
    }

    /// The job's live event stream: a blocking iterator ending after the
    /// terminal event, bit-identical to the in-process stream of the
    /// same request. Like [`hasco::engine::JobHandle::events`], the live
    /// stream is effectively consumed once — iterating after the
    /// terminal frame yields nothing.
    pub fn events(&self) -> RemoteEvents {
        RemoteEvents {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until the job finishes (draining any unread events) and
    /// returns its result.
    ///
    /// # Errors
    /// Exactly what `JobHandle::wait` would return in-process, plus
    /// [`HascoError::Transport`] when the connection died first.
    pub fn wait(&self) -> Result<Solution, HascoError> {
        // A poisoned lock means a peer thread panicked mid-call;
        // `JobShared` is updated in whole-value steps, so recover the
        // guard rather than killing this caller too.
        let mut shared = self.shared.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = shared.result.clone() {
                return result;
            }
            shared.next_event();
        }
    }

    /// Requests cancellation via a fresh connection (the event stream
    /// occupies the original one). Best-effort, like in-process cancel:
    /// losing the race to completion is a no-op.
    pub fn cancel(&self) {
        let client = Client {
            addr: self.addr.clone(),
        };
        if let Ok(mut stream) = client.open() {
            let _ = proto::send(
                &mut stream,
                &Msg::Cancel {
                    job_id: self.job_id,
                },
            );
            let _ = proto::recv(&mut stream);
        }
    }
}

/// Blocking iterator over a remote job's [`RunEvent`]s.
#[derive(Debug)]
pub struct RemoteEvents {
    shared: Arc<Mutex<JobShared>>,
}

impl Iterator for RemoteEvents {
    type Item = RunEvent;

    fn next(&mut self) -> Option<RunEvent> {
        self.shared
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .next_event()
    }
}
