//! Hand-rolled binary codec for every type that crosses the wire.
//!
//! The vendored `serde` is a marker-trait shim (no derive-driven codegen),
//! so the protocol encodes by hand, the same way the memo cache's
//! persisted image does: little-endian fixed-width integers, `f64` as
//! [`f64::to_bits`] (bit-exact round trips — determinism forbids any
//! text-float detour), length-prefixed strings and sequences, and
//! one-byte tags for enums and options. Framing, checksumming, and
//! truncation handling live a layer down in [`runtime::persist`]; decode
//! here assumes a checksum-validated payload and returns `None` on any
//! structural mismatch, which the transport surfaces as a protocol error.

use std::collections::BTreeMap;

use accel_model::arch::{AcceleratorConfig, Dataflow, Interconnect, PeArray};
use accel_model::tech::TechParams;
use accel_model::{BackendKind, Metrics};
use dse::problem::{Evaluation, OptimizerResult};
use hasco::codesign::CoDesignOptions;
use hasco::engine::{CampaignOutcome, CoDesignRequest};
use hasco::event::{CampaignEvent, RunEvent};
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use hasco::remote::RemoteEvalRequest;
use hasco::solution::{Solution, WorkloadSolution};
use hasco::{HascoError, OptimizerKind, RunStats};
use runtime::CacheStats;
use sw_opt::explorer::ExplorerOptions;
use sw_opt::schedule::Schedule;
use tensor_ir::expr::{Access, AffineDim, Computation};
use tensor_ir::index::{IndexId, IndexKind, IndexVar};
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::matching::TensorizeChoice;
use tensor_ir::workload::{TensorApp, Workload};

/// A cursor over a decoded payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Takes the next `n` bytes, or `None` past the end.
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// True once the whole payload was consumed — decoders require this
    /// so trailing garbage can't hide in a valid-looking message.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Symmetric binary encoding. `decode` must accept exactly what `encode`
/// produced (a bit-exact round trip) and reject everything else with
/// `None`.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the cursor.
    fn decode(r: &mut Reader<'_>) -> Option<Self>;
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.take(1).and_then(|b| b.first()).copied()
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.take(4).and_then(|b| b.try_into().ok()).map(u32::from_le_bytes)
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.take(8).and_then(|b| b.try_into().ok()).map(u64::from_le_bytes)
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        usize::try_from(u64::decode(r)?).ok()
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        u64::decode(r).map(f64::from_bits)
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match u8::decode(r)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let len = usize::decode(r)?;
        String::from_utf8(r.take(len)?.to_vec()).ok()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match u8::decode(r)? {
            0 => Some(None),
            1 => Some(Some(T::decode(r)?)),
            _ => None,
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let len = usize::decode(r)?;
        // No speculative preallocation from the wire length: a corrupt
        // count fails on the first short `take`, not in the allocator.
        let mut items = Vec::new();
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Some(items)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some((A::decode(r)?, B::decode(r)?))
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let len = usize::decode(r)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            map.insert(k, v);
        }
        Some(map)
    }
}

impl<T: Wire, E: Wire> Wire for Result<T, E> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                out.push(0);
                v.encode(out);
            }
            Err(e) => {
                out.push(1);
                e.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match u8::decode(r)? {
            0 => Some(Ok(T::decode(r)?)),
            1 => Some(Err(E::decode(r)?)),
            _ => None,
        }
    }
}

/// Implements [`Wire`] for a struct with all-[`Wire`] public fields,
/// encoded in declaration order.
macro_rules! wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$field.encode(out);)+
            }
            fn decode(r: &mut Reader<'_>) -> Option<Self> {
                Some(Self { $($field: Wire::decode(r)?),+ })
            }
        }
    };
}

/// Implements [`Wire`] for a fieldless enum as a one-byte tag.
macro_rules! wire_enum_unit {
    ($ty:ty { $($tag:literal => $variant:path),+ $(,)? }) => {
        impl Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                match self { $($variant => out.push($tag)),+ }
            }
            fn decode(r: &mut Reader<'_>) -> Option<Self> {
                match u8::decode(r)? { $($tag => Some($variant),)+ _ => None }
            }
        }
    };
}

// ---- tensor-ir ----------------------------------------------------------

impl Wire for IndexId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        usize::decode(r).map(IndexId)
    }
}

wire_enum_unit!(IndexKind {
    0 => IndexKind::Spatial,
    1 => IndexKind::Reduction,
});
wire_struct!(IndexVar { name, extent, kind });
wire_struct!(AffineDim { terms });
wire_struct!(Access { tensor, dims });
wire_struct!(Computation {
    name,
    indices,
    output,
    inputs,
});
wire_struct!(Workload { name, comp });
wire_struct!(TensorApp { name, workloads });
wire_enum_unit!(IntrinsicKind {
    0 => IntrinsicKind::Dot,
    1 => IntrinsicKind::Gemv,
    2 => IntrinsicKind::Gemm,
    3 => IntrinsicKind::Conv2d,
});
wire_struct!(TensorizeChoice {
    intrinsic,
    var_map,
    needs_rearrangement,
});

// ---- accel-model --------------------------------------------------------

wire_struct!(PeArray { rows, cols });
wire_enum_unit!(Interconnect {
    0 => Interconnect::None,
    1 => Interconnect::Systolic,
    2 => Interconnect::Full,
});
wire_enum_unit!(Dataflow {
    0 => Dataflow::OutputStationary,
    1 => Dataflow::WeightStationary,
    2 => Dataflow::InputStationary,
});
wire_struct!(AcceleratorConfig {
    name,
    intrinsic,
    pe,
    interconnect,
    dataflow,
    scratchpad_bytes,
    banks,
    local_mem_bytes,
    dma_burst_bytes,
    bus_width_bits,
    freq_mhz,
    dtype_bytes,
});
wire_struct!(Metrics {
    latency_cycles,
    latency_ms,
    energy_uj,
    power_mw,
    area_mm2,
    throughput_mops,
    utilization,
});
wire_enum_unit!(BackendKind {
    0 => BackendKind::Analytic,
    1 => BackendKind::TraceSim,
    2 => BackendKind::Calibrated,
    3 => BackendKind::Surrogate,
});

impl Wire for TechParams {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in self.to_array() {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let mut a = [0.0f64; 13];
        for slot in &mut a {
            *slot = f64::decode(r)?;
        }
        Some(TechParams::from_array(a))
    }
}

// ---- sw-opt / dse -------------------------------------------------------

wire_struct!(ExplorerOptions {
    pool,
    rounds,
    top_k,
    max_pool,
    use_qlearning,
    fixed_choice,
});
wire_struct!(Schedule {
    choice,
    tiles,
    outer_order,
    fuse_outer,
});
wire_struct!(Evaluation { point, objectives });
wire_struct!(OptimizerResult {
    optimizer,
    evaluations,
    infeasible,
});

// ---- hasco core ---------------------------------------------------------

wire_struct!(Constraints {
    max_latency_ms,
    max_power_mw,
    max_area_mm2,
});

impl Wire for GenerationMethod {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GenerationMethod::Chisel(k) => {
                out.push(0);
                k.encode(out);
            }
            GenerationMethod::Gemmini => out.push(1),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match u8::decode(r)? {
            0 => Some(GenerationMethod::Chisel(IntrinsicKind::decode(r)?)),
            1 => Some(GenerationMethod::Gemmini),
            _ => None,
        }
    }
}

wire_struct!(InputDescription {
    app,
    method,
    constraints,
});
wire_enum_unit!(OptimizerKind {
    0 => OptimizerKind::Mobo,
    1 => OptimizerKind::Nsga2,
    2 => OptimizerKind::Random,
    3 => OptimizerKind::Anneal,
});

impl Wire for CoDesignOptions {
    fn encode(&self, out: &mut Vec<u8>) {
        self.hw_trials.encode(out);
        self.mobo_prior.encode(out);
        self.sw_inner.encode(out);
        self.sw_final.encode(out);
        self.tuning_rounds.encode(out);
        self.seed.encode(out);
        self.threads.encode(out);
        self.work_stealing.encode(out);
        self.cache_capacity.encode(out);
        self.backend.encode(out);
        self.refine_backend.encode(out);
        self.refine_top_k.encode(out);
        self.adaptive_refinement.encode(out);
        self.tech.encode(out);
        self.optimizer.encode(out);
        self.surrogate_full_refit.encode(out);
        // `cache_path` is deliberately not on the wire: the engine
        // ignores it (warm state is the serving engine's, configured
        // server-side) and it is excluded from request fingerprints, so
        // shipping a client-local path would only leak filesystem
        // details.
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        // Start from a constructed options value (the struct is not
        // `Default`) and overwrite every wire-carried field.
        let mut opts = CoDesignOptions::quick(0);
        opts.hw_trials = Wire::decode(r)?;
        opts.mobo_prior = Wire::decode(r)?;
        opts.sw_inner = Wire::decode(r)?;
        opts.sw_final = Wire::decode(r)?;
        opts.tuning_rounds = Wire::decode(r)?;
        opts.seed = Wire::decode(r)?;
        opts.threads = Wire::decode(r)?;
        opts.work_stealing = Wire::decode(r)?;
        opts.cache_capacity = Wire::decode(r)?;
        opts.backend = Wire::decode(r)?;
        opts.refine_backend = Wire::decode(r)?;
        opts.refine_top_k = Wire::decode(r)?;
        opts.adaptive_refinement = Wire::decode(r)?;
        opts.tech = Wire::decode(r)?;
        opts.optimizer = Wire::decode(r)?;
        opts.surrogate_full_refit = Wire::decode(r)?;
        opts.cache_path = None;
        Some(opts)
    }
}

wire_struct!(CoDesignRequest {
    input,
    options,
    label,
});
wire_struct!(CacheStats {
    hits,
    misses,
    inserts,
    evictions,
});
wire_struct!(RunStats {
    threads,
    hw_evaluations,
    sw_explorations,
    refine_explorations,
    backend,
    refine_backend,
    refine_topk_trajectory,
    surrogate_samples,
    surrogate_trusted,
    warm_cache_entries,
    steals,
    cache,
});
wire_struct!(WorkloadSolution {
    workload,
    schedule,
    metrics,
    program,
});
wire_struct!(Solution {
    accelerator,
    per_workload,
    total,
    meets_constraints,
    hw_history,
    stats,
});
wire_struct!(CampaignOutcome {
    label,
    solution,
    shared_with,
});
wire_struct!(RemoteEvalRequest {
    backend,
    tech,
    seed,
    sw_opts,
    workload,
    config,
});

impl Wire for HascoError {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            HascoError::EmptyApp => out.push(0),
            HascoError::InvalidOptions(msg) => {
                out.push(1);
                msg.encode(out);
            }
            HascoError::Cancelled => out.push(2),
            HascoError::NoFeasibleAccelerator => out.push(3),
            HascoError::Software(msg) => {
                out.push(4);
                msg.encode(out);
            }
            HascoError::Hardware(msg) => {
                out.push(5);
                msg.encode(out);
            }
            HascoError::Transport(msg) => {
                out.push(6);
                msg.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(match u8::decode(r)? {
            0 => HascoError::EmptyApp,
            1 => HascoError::InvalidOptions(String::decode(r)?),
            2 => HascoError::Cancelled,
            3 => HascoError::NoFeasibleAccelerator,
            4 => HascoError::Software(String::decode(r)?),
            5 => HascoError::Hardware(String::decode(r)?),
            6 => HascoError::Transport(String::decode(r)?),
            _ => return None,
        })
    }
}

impl Wire for RunEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RunEvent::Started { label, workloads } => {
                out.push(0);
                label.encode(out);
                workloads.encode(out);
            }
            RunEvent::Partitioned { workload, choices } => {
                out.push(1);
                workload.encode(out);
                choices.encode(out);
            }
            RunEvent::BatchEvaluated {
                optimizer,
                phase,
                batch,
                evaluated,
                feasible,
            } => {
                out.push(2);
                optimizer.encode(out);
                phase.encode(out);
                batch.encode(out);
                evaluated.encode(out);
                feasible.encode(out);
            }
            RunEvent::Refined {
                batch,
                survivors,
                budget,
            } => {
                out.push(3);
                batch.encode(out);
                survivors.encode(out);
                budget.encode(out);
            }
            RunEvent::SoftwareOptimized {
                workload,
                rounds,
                latency_ms,
            } => {
                out.push(4);
                workload.encode(out);
                rounds.encode(out);
                latency_ms.encode(out);
            }
            RunEvent::Tuned {
                round,
                meets_constraints,
            } => {
                out.push(5);
                round.encode(out);
                meets_constraints.encode(out);
            }
            RunEvent::Solved {
                meets_constraints,
                latency_ms,
            } => {
                out.push(6);
                meets_constraints.encode(out);
                latency_ms.encode(out);
            }
            RunEvent::Cancelled => out.push(7),
            RunEvent::Failed { error } => {
                out.push(8);
                error.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(match u8::decode(r)? {
            0 => RunEvent::Started {
                label: Wire::decode(r)?,
                workloads: Wire::decode(r)?,
            },
            1 => RunEvent::Partitioned {
                workload: Wire::decode(r)?,
                choices: Wire::decode(r)?,
            },
            2 => RunEvent::BatchEvaluated {
                optimizer: Wire::decode(r)?,
                phase: Wire::decode(r)?,
                batch: Wire::decode(r)?,
                evaluated: Wire::decode(r)?,
                feasible: Wire::decode(r)?,
            },
            3 => RunEvent::Refined {
                batch: Wire::decode(r)?,
                survivors: Wire::decode(r)?,
                budget: Wire::decode(r)?,
            },
            4 => RunEvent::SoftwareOptimized {
                workload: Wire::decode(r)?,
                rounds: Wire::decode(r)?,
                latency_ms: Wire::decode(r)?,
            },
            5 => RunEvent::Tuned {
                round: Wire::decode(r)?,
                meets_constraints: Wire::decode(r)?,
            },
            6 => RunEvent::Solved {
                meets_constraints: Wire::decode(r)?,
                latency_ms: Wire::decode(r)?,
            },
            7 => RunEvent::Cancelled,
            8 => RunEvent::Failed {
                error: Wire::decode(r)?,
            },
            _ => return None,
        })
    }
}

impl Wire for CampaignEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CampaignEvent::Planned {
                scenarios,
                unique_jobs,
                deduplicated,
            } => {
                out.push(0);
                scenarios.encode(out);
                unique_jobs.encode(out);
                deduplicated.encode(out);
            }
            CampaignEvent::Job { label, event } => {
                out.push(1);
                label.encode(out);
                event.encode(out);
            }
            CampaignEvent::ScenarioDone {
                label,
                shared_with,
                completed,
                total,
            } => {
                out.push(2);
                label.encode(out);
                shared_with.encode(out);
                completed.encode(out);
                total.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(match u8::decode(r)? {
            0 => CampaignEvent::Planned {
                scenarios: Wire::decode(r)?,
                unique_jobs: Wire::decode(r)?,
                deduplicated: Wire::decode(r)?,
            },
            1 => CampaignEvent::Job {
                label: Wire::decode(r)?,
                event: Wire::decode(r)?,
            },
            2 => CampaignEvent::ScenarioDone {
                label: Wire::decode(r)?,
                shared_with: Wire::decode(r)?,
                completed: Wire::decode(r)?,
                total: Wire::decode(r)?,
            },
            _ => return None,
        })
    }
}

/// Encodes one value to a fresh buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes one value, requiring the payload to be fully consumed.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Option<T> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    r.is_exhausted().then_some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + std::fmt::Debug>(value: &T) -> T {
        let bytes = to_bytes(value);
        from_bytes(&bytes).expect("round trip decodes")
    }

    /// Debug output for these types prints floats in shortest-round-trip
    /// form, so Debug equality is bit equality for everything we care
    /// about (no NaNs in the domain).
    fn assert_roundtrip<T: Wire + std::fmt::Debug>(value: &T) {
        assert_eq!(format!("{value:?}"), format!("{:?}", roundtrip(value)));
    }

    #[test]
    fn primitives_round_trip() {
        assert_roundtrip(&0u8);
        assert_roundtrip(&u64::MAX);
        assert_roundtrip(&(-0.0f64));
        assert_roundtrip(&1.000000000000004f64);
        assert_roundtrip(&Some("labelled".to_string()));
        assert_roundtrip(&Option::<u64>::None);
        assert_roundtrip(&vec![1usize, 2, 3]);
    }

    #[test]
    fn request_and_workload_round_trip() {
        let app = TensorApp::new(
            "toy",
            vec![
                tensor_ir::suites::gemm_workload("g", 64, 32, 16),
                tensor_ir::suites::gemm_workload("h", 8, 8, 8),
            ],
        );
        let input = InputDescription {
            app,
            method: GenerationMethod::Chisel(IntrinsicKind::Gemm),
            constraints: Constraints::latency_power(4.0, 900.0),
        };
        let mut opts = CoDesignOptions::quick(1234);
        opts.refine_top_k = 2;
        opts.refine_backend = BackendKind::TraceSim;
        let request = CoDesignRequest::new(input, opts).with_label("wire-test");
        let back: CoDesignRequest = roundtrip(&request);
        // The request fingerprint hashes everything evaluation sees, so
        // fingerprint equality is the strongest round-trip check we have.
        assert_eq!(request.fingerprint(), back.fingerprint());
        assert_eq!(request.label, back.label);
    }

    #[test]
    fn events_and_errors_round_trip() {
        assert_roundtrip(&RunEvent::Started {
            label: "x".into(),
            workloads: 3,
        });
        assert_roundtrip(&RunEvent::Solved {
            meets_constraints: true,
            latency_ms: 1.25,
        });
        assert_roundtrip(&RunEvent::Cancelled);
        assert_roundtrip(&CampaignEvent::ScenarioDone {
            label: "a".into(),
            shared_with: Some("b".into()),
            completed: 2,
            total: 9,
        });
        assert_roundtrip(&HascoError::InvalidOptions("bad".into()));
        assert_roundtrip(&HascoError::Transport("conn reset".into()));
        let res: Result<u64, HascoError> = Err(HascoError::Cancelled);
        assert_roundtrip(&res);
    }

    #[test]
    fn trailing_garbage_and_truncation_are_rejected() {
        let mut bytes = to_bytes(&RunEvent::Cancelled);
        assert!(from_bytes::<RunEvent>(&bytes).is_some());
        bytes.push(7);
        assert!(from_bytes::<RunEvent>(&bytes).is_none());
        let event = to_bytes(&RunEvent::Started {
            label: "abc".into(),
            workloads: 1,
        });
        assert!(from_bytes::<RunEvent>(&event[..event.len() - 1]).is_none());
        assert!(from_bytes::<RunEvent>(&[99]).is_none());
    }
}
