//! `hasco-worker` — a remote evaluation worker process.
//!
//! Connects to a `hasco-serve` front-end, registers, and evaluates
//! shards of expensive screening/refinement batches until released.
//!
//! ```text
//! hasco-worker --connect 127.0.0.1:4477
//! ```

use std::process::ExitCode;

use hasco_net::worker::{self, WorkerOptions};

const USAGE: &str = "\
hasco-worker: HASCO remote evaluation worker

USAGE:
    hasco-worker --connect ADDR [OPTIONS]

OPTIONS:
    --connect ADDR         Front-end address (required)
    --die-after-batches N  Test hook: drop the connection without
                           replying to batch N+1 (simulated crash)
    --help                 Show this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("hasco-worker: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut opts = WorkerOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next() {
                Some(v) => addr = Some(v),
                None => return fail("--connect needs an address"),
            },
            "--die-after-batches" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => opts.die_after_batches = Some(n),
                _ => return fail("--die-after-batches needs an integer"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown flag {other}")),
        }
    }
    let Some(addr) = addr else {
        return fail("--connect is required");
    };

    match worker::run(&addr, &opts) {
        Ok(served) => {
            println!("hasco-worker: released after {served} batches");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hasco-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
