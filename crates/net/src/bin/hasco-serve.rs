//! `hasco-serve` — the network serving front-end.
//!
//! Wraps a long-lived engine (shared memo cache, surrogate store) behind
//! a TCP listener so submits, event streams, and campaigns work across
//! processes, and shards expensive evaluation batches across registered
//! `hasco-worker` processes.
//!
//! ```text
//! hasco-serve --listen 127.0.0.1:4477 --workers-remote 2 \
//!             --cache /var/lib/hasco/memo.bin --job-slots 2
//! ```

use std::process::ExitCode;
use std::time::Duration;

use hasco::engine::EngineConfig;
use hasco_net::{Server, ServerOptions};

const USAGE: &str = "\
hasco-serve: HASCO network serving front-end

USAGE:
    hasco-serve [OPTIONS]

OPTIONS:
    --listen ADDR           Bind address (default 127.0.0.1:4477)
    --job-slots N           Concurrent job slots (default 1)
    --cache PATH            Persistent memo-cache image
    --cache-max-age SECS    Age GC for the persisted image
    --surrogate-store PATH  Persistent surrogate-registry image
    --workers-remote N      Hold jobs until N workers registered (default 0)
    --help                  Show this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("hasco-serve: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut listen = "127.0.0.1:4477".to_string();
    let mut config = EngineConfig::default();
    let mut opts = ServerOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--listen" => match value("--listen") {
                Ok(v) => listen = v,
                Err(e) => return fail(&e),
            },
            "--job-slots" => match value("--job-slots").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n > 0 => config = config.with_job_slots(n),
                _ => return fail("--job-slots needs a positive integer"),
            },
            "--cache" => match value("--cache") {
                Ok(v) => config = config.with_cache_path(v),
                Err(e) => return fail(&e),
            },
            "--cache-max-age" => match value("--cache-max-age").map(|v| v.parse::<u64>()) {
                Ok(Ok(secs)) => config = config.with_cache_max_age(Duration::from_secs(secs)),
                _ => return fail("--cache-max-age needs seconds"),
            },
            "--surrogate-store" => match value("--surrogate-store") {
                Ok(v) => config = config.with_surrogate_store(v),
                Err(e) => return fail(&e),
            },
            "--workers-remote" => match value("--workers-remote").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) => opts.min_workers = n,
                _ => return fail("--workers-remote needs an integer"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown flag {other}")),
        }
    }

    let server = match Server::bind(&listen, config, opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("hasco-serve: bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The smoke scripts wait for this exact line before starting work.
    println!("hasco-serve: listening on {}", server.addr());

    // Serve until a client sends Shutdown, then exit cleanly (the
    // shutdown path already drained handlers and persisted warm state).
    server.wait_for_shutdown();
    println!("hasco-serve: drained, exiting");
    ExitCode::SUCCESS
}
