//! Remote batch dispatch: sharding expensive evaluation batches across
//! registered worker processes.
//!
//! [`RemoteBatchEvaluator`] plugs into the engine through the
//! [`runtime::BatchEvaluator`] seam the staged-fidelity evaluators
//! already use. The engine hands it a batch of
//! [`RemoteEvalRequest`]s (one per un-memoized (config, workload) pair of
//! a screening or refinement batch); the evaluator shards the batch
//! contiguously across every live worker, exchanges one
//! `BatchRequest`/`BatchResult` conversation per worker, and reassembles
//! the results in submission order.
//!
//! **Why worker count and worker death cannot change results.** Each
//! item's result is a pure function of the request itself (fresh
//! explorer, fresh RNG, backend rebuilt from `(BackendKind, TechParams)`
//! — see [`RemoteEvalRequest::evaluate`]), and the reassembly slot for
//! each item is fixed by its submission index. Sharding only decides
//! *where* a pure function runs. When a worker dies mid-batch its items
//! return to the pending set and are re-dispatched to surviving workers;
//! when none survive, the front-end evaluates the remainder in-process
//! with the very same `evaluate` body. Every path writes the same bits
//! into the same slot.

use std::collections::VecDeque;
use std::io;
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

use accel_model::Metrics;
use hasco::remote::RemoteEvalRequest;
use runtime::BatchEvaluator;

use crate::proto::{self, Msg};

/// What one dispatch thread brings home: the worker, the shard indices
/// it held, and the exchange outcome.
type ShardOutcome = (WorkerConn, Vec<usize>, io::Result<Vec<Option<Metrics>>>);

/// Default bound on one batch exchange: covers trace-simulating a full
/// shard on a loaded worker with two orders of magnitude to spare, while
/// still unsticking the front-end from a hung peer eventually.
pub const DEFAULT_EXCHANGE_TIMEOUT: Duration = Duration::from_secs(600);

/// One registered worker connection, owned by the registry between
/// batches and checked out for the duration of one exchange.
#[derive(Debug)]
pub struct WorkerConn {
    /// Registration id, unique per serving process.
    pub id: u64,
    stream: TcpStream,
}

impl WorkerConn {
    /// Wraps an accepted, handshake-complete worker stream.
    pub fn new(id: u64, stream: TcpStream) -> Self {
        WorkerConn { id, stream }
    }

    /// Runs one `BatchRequest`/`BatchResult` exchange. Any I/O failure,
    /// protocol violation, sequence mismatch, or wrong result arity is
    /// an error — the caller drops the worker and re-dispatches.
    fn exchange(
        &mut self,
        seq: u64,
        items: &[RemoteEvalRequest],
        timeout: Duration,
    ) -> io::Result<Vec<Option<Metrics>>> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))?;
        proto::send(
            &mut self.stream,
            &Msg::BatchRequest {
                batch: seq,
                items: items.to_vec(),
            },
        )?;
        match proto::recv_expect(&mut self.stream)? {
            Msg::BatchResult { batch, results } if batch == seq && results.len() == items.len() => {
                Ok(results)
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("worker {}: unexpected reply {:?}", self.id, kind_of(&other)),
            )),
        }
    }

    /// Sends a liveness probe and waits briefly for the echo.
    pub fn ping(&mut self, nonce: u64, timeout: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))?;
        proto::send(&mut self.stream, &Msg::Ping { nonce })?;
        match proto::recv_expect(&mut self.stream)? {
            Msg::Pong { nonce: echo } if echo == nonce => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("worker {}: bad pong {:?}", self.id, kind_of(&other)),
            )),
        }
    }

    /// Asks the worker to exit; best-effort, the reply is not awaited.
    pub fn release(mut self) {
        let _ = proto::send(&mut self.stream, &Msg::Shutdown);
    }
}

fn kind_of(msg: &Msg) -> &'static str {
    match msg {
        Msg::ClientHello { .. } => "ClientHello",
        Msg::WorkerHello { .. } => "WorkerHello",
        Msg::HelloOk => "HelloOk",
        Msg::Submit { .. } => "Submit",
        Msg::Accepted { .. } => "Accepted",
        Msg::Event { .. } => "Event",
        Msg::Done { .. } => "Done",
        Msg::Cancel { .. } => "Cancel",
        Msg::CancelOk { .. } => "CancelOk",
        Msg::CampaignPlan { .. } => "CampaignPlan",
        Msg::Campaign { .. } => "Campaign",
        Msg::CampaignDone { .. } => "CampaignDone",
        Msg::Persist => "Persist",
        Msg::PersistOk { .. } => "PersistOk",
        Msg::BatchRequest { .. } => "BatchRequest",
        Msg::BatchResult { .. } => "BatchResult",
        Msg::Ping { .. } => "Ping",
        Msg::Pong { .. } => "Pong",
        Msg::Shutdown => "Shutdown",
        Msg::ShutdownOk => "ShutdownOk",
        Msg::Error { .. } => "Error",
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    available: VecDeque<WorkerConn>,
    checked_out: usize,
    next_id: u64,
    batch_seq: u64,
}

/// The serving process's pool of live worker connections.
///
/// Workers register after their hello handshake and live here between
/// batches. Dispatch checks out every available worker for one exchange
/// round and checks survivors back in; a worker whose exchange failed is
/// simply not returned — dropping the connection is the whole
/// deregistration story.
#[derive(Debug, Default)]
pub struct WorkerRegistry {
    inner: Mutex<RegistryInner>,
}

impl WorkerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the pool, recovering from poisoning: the queue and
    /// counters are whole-value updates, and a panicked dispatch thread
    /// must not wedge worker checkout for every later batch.
    fn locked(&self) -> MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a handshake-complete worker stream; returns its id.
    pub fn register(&self, stream: TcpStream) -> u64 {
        let mut inner = self.locked();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.available.push_back(WorkerConn::new(id, stream));
        id
    }

    /// Live workers right now (available plus mid-exchange).
    pub fn live(&self) -> usize {
        let inner = self.locked();
        inner.available.len() + inner.checked_out
    }

    /// Checks out every currently-available worker and reserves a
    /// contiguous block of batch sequence numbers for the round.
    fn checkout_all(&self) -> (Vec<WorkerConn>, u64) {
        let mut inner = self.locked();
        let workers: Vec<WorkerConn> = inner.available.drain(..).collect();
        inner.checked_out += workers.len();
        let base = inner.batch_seq;
        inner.batch_seq += workers.len() as u64;
        (workers, base)
    }

    /// Returns one checked-out worker to the pool.
    fn checkin(&self, worker: WorkerConn) {
        let mut inner = self.locked();
        inner.checked_out = inner.checked_out.saturating_sub(1);
        inner.available.push_back(worker);
    }

    /// Forgets one checked-out worker (its connection just failed).
    fn discard(&self) {
        let mut inner = self.locked();
        inner.checked_out = inner.checked_out.saturating_sub(1);
    }

    /// Drains the pool, asking every available worker to exit.
    pub fn release_all(&self) {
        let workers: Vec<WorkerConn> = {
            let mut inner = self.locked();
            inner.available.drain(..).collect()
        };
        for w in workers {
            w.release();
        }
    }

    /// Sends one round of pings to all available workers and drops any
    /// that fail to echo. Returns (survivors, dropped).
    pub fn sweep(&self, nonce: u64, timeout: Duration) -> (usize, usize) {
        let (workers, _) = self.checkout_all();
        let mut kept = 0;
        let mut dropped = 0;
        for mut w in workers {
            if w.ping(nonce, timeout).is_ok() {
                self.checkin(w);
                kept += 1;
            } else {
                self.discard();
                dropped += 1;
            }
        }
        (kept, dropped)
    }
}

/// A [`BatchEvaluator`] that ships each batch to the registered workers
/// and falls back to in-process evaluation for whatever the fleet cannot
/// answer. See the module docs for the determinism argument.
#[derive(Debug)]
pub struct RemoteBatchEvaluator {
    registry: Arc<WorkerRegistry>,
    exchange_timeout: Duration,
}

impl RemoteBatchEvaluator {
    /// Dispatches over `registry` with the default exchange timeout.
    pub fn new(registry: Arc<WorkerRegistry>) -> Self {
        RemoteBatchEvaluator {
            registry,
            exchange_timeout: DEFAULT_EXCHANGE_TIMEOUT,
        }
    }

    /// Overrides the per-exchange socket timeout (tests use short ones).
    pub fn with_exchange_timeout(mut self, timeout: Duration) -> Self {
        self.exchange_timeout = timeout;
        self
    }
}

impl BatchEvaluator for RemoteBatchEvaluator {
    type Request = RemoteEvalRequest;
    type Response = Option<Metrics>;

    fn evaluate_batch(&self, batch: &[RemoteEvalRequest]) -> Vec<Option<Metrics>> {
        if batch.is_empty() {
            return Vec::new();
        }
        let mut slots: Vec<Option<Option<Metrics>>> = vec![None; batch.len()];
        let mut pending: Vec<usize> = (0..batch.len()).collect();

        // Each round either fills every pending slot or loses at least
        // one worker, so the loop terminates; the in-process fallback
        // below covers a fully-dead fleet.
        while !pending.is_empty() {
            let (workers, seq_base) = self.registry.checkout_all();
            if workers.is_empty() {
                break;
            }
            let per = pending.len().div_ceil(workers.len());
            let shards: Vec<Vec<usize>> = pending.chunks(per).map(|c| c.to_vec()).collect();
            let mut workers = workers.into_iter();
            let mut outcomes: Vec<ShardOutcome> = Vec::new();
            // Shards whose dispatch thread panicked: their items go back
            // on the pending list like any failed exchange.
            let mut lost: Vec<Vec<usize>> = Vec::new();
            // Dispatch fan-out is I/O concurrency over sockets; results
            // land in index-fixed slots, so join order and thread
            // scheduling cannot reach results.
            // detlint-allow(ambient): socket fan-out with index-fixed result slots
            thread::scope(|s| {
                let mut handles = Vec::new();
                // `per` is `pending.len()` divided by the worker count
                // rounded up, so there are never more shards than
                // workers — `zip` pairs every shard with one.
                for (k, (shard, mut worker)) in shards.into_iter().zip(workers.by_ref()).enumerate()
                {
                    let items: Vec<RemoteEvalRequest> = shard
                        .iter()
                        .filter_map(|&i| batch.get(i).cloned())
                        .collect();
                    let seq = seq_base + k as u64;
                    let timeout = self.exchange_timeout;
                    let backup = shard.clone();
                    handles.push((
                        backup,
                        s.spawn(move || {
                            let res = worker.exchange(seq, &items, timeout);
                            (worker, shard, res)
                        }),
                    ));
                }
                for (backup, h) in handles {
                    match h.join() {
                        Ok(outcome) => outcomes.push(outcome),
                        // The thread (and the worker connection it owned)
                        // is gone; recover its shard from the backup.
                        Err(_) => lost.push(backup),
                    }
                }
            });
            // Workers beyond the shard count idled this round.
            for w in workers {
                self.registry.checkin(w);
            }
            pending.clear();
            for shard in lost {
                pending.extend(shard);
                self.registry.discard();
            }
            for (worker, shard, res) in outcomes {
                match res {
                    Ok(results) => {
                        for (i, m) in shard.into_iter().zip(results) {
                            if let Some(slot) = slots.get_mut(i) {
                                *slot = Some(m);
                            }
                        }
                        self.registry.checkin(worker);
                    }
                    Err(_) => {
                        // The worker died or violated the protocol: its
                        // items go back on the pending list and the
                        // connection is dropped.
                        pending.extend(shard);
                        self.registry.discard();
                    }
                }
            }
            pending.sort_unstable();
        }

        // In-process fallback: the same pure per-item function the
        // workers run, so a dead fleet degrades throughput, not results.
        for i in pending {
            if let (Some(slot), Some(request)) = (slots.get_mut(i), batch.get(i)) {
                *slot = Some(request.evaluate());
            }
        }
        slots
            .into_iter()
            // detlint-allow(panic-safety): every index 0..batch.len() is either filled by a dispatch round or still in pending, and the fallback loop above fills all of pending
            .map(|s| s.expect("every slot filled by dispatch or fallback"))
            .collect()
    }
}
