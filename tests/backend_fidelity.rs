//! The cost-backend layer's contracts, end to end: fidelity staging
//! (analytic screen + sim refine) tracks the sim-only Pareto front while
//! running strictly fewer high-fidelity evaluations, and the stable
//! fingerprints that key the persistent cross-run cache are identical
//! across processes.

use accel_model::arch::AcceleratorConfig;
use accel_model::BackendKind;
use dse::problem::{Point, Problem};
use hasco::codesign::{CoDesignOptions, HwProblem};
use hw_gen::space::Generator;
use hw_gen::GemminiGenerator;
use runtime::{Fingerprinter, StableFingerprint};
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::suites;
use tensor_ir::workload::Workload;

fn workloads() -> Vec<Workload> {
    vec![
        suites::gemm_workload("g1", 256, 256, 256),
        suites::conv2d_workload("c1", 64, 64, 28, 28, 3, 3),
    ]
}

/// A deterministic spread of design points covering the space.
fn sample_points(generator: &dyn Generator, n: usize) -> Vec<Point> {
    let dims: Vec<usize> = generator.space().dims.iter().map(|d| d.len()).collect();
    (0..n)
        .map(|k| {
            dims.iter()
                .enumerate()
                .map(|(d, &s)| (k * (d + 3) + k / 2) % s)
                .collect()
        })
        .collect()
}

/// Pareto front (on the objective vectors) of the feasible responses.
fn front_of(responses: &[Option<Vec<f64>>]) -> Vec<Vec<f64>> {
    let objs: Vec<&[f64]> = responses.iter().filter_map(|r| r.as_deref()).collect();
    dse::pareto::pareto_indices(&objs)
        .into_iter()
        .map(|i| objs[i].to_vec())
        .collect()
}

#[test]
fn staged_front_tracks_sim_only_front_with_fewer_hifi_evals() {
    let generator = GemminiGenerator::new();
    let wls = workloads();
    let sw = CoDesignOptions::quick(0).sw_inner;
    let points = sample_points(&generator, 12);

    // Reference: every point priced at full trace-sim fidelity.
    let mut sim_only =
        HwProblem::new(&generator, &wls, sw.clone(), 0).with_backend(BackendKind::TraceSim.build());
    let sim_responses = sim_only.evaluate_batch(&points);

    // Staged: analytic screen over everything, sim refinement of the
    // top-4 survivors only.
    let mut staged = HwProblem::new(&generator, &wls, sw, 0)
        .with_backend(BackendKind::Analytic.build())
        .with_refinement(BackendKind::TraceSim.build(), 4);
    let staged_responses = staged.evaluate_batch(&points);

    // Strictly fewer candidates reach high fidelity.
    assert!(staged.refine_requests() > 0);
    assert!(
        staged.refine_requests() < sim_only.sw_requests(),
        "staging ran {} high-fidelity pair evaluations vs {} for sim-only",
        staged.refine_requests(),
        sim_only.sw_requests()
    );

    // Feasibility is backend-independent.
    for (a, b) in sim_responses.iter().zip(&staged_responses) {
        assert_eq!(a.is_some(), b.is_some());
    }

    // The staged run's best latency comes from a sim-refined candidate
    // and must match the sim-only front's best latency within tolerance
    // (the analytic screen can at worst hand the refiner a slightly
    // different top-k, not a wildly different one).
    let best =
        |front: &[Vec<f64>]| -> f64 { front.iter().map(|o| o[0]).fold(f64::INFINITY, f64::min) };
    let sim_front = front_of(&sim_responses);
    let staged_front = front_of(&staged_responses);
    assert!(!sim_front.is_empty() && !staged_front.is_empty());
    let (sim_best, staged_best) = (best(&sim_front), best(&staged_front));
    let ratio = staged_best / sim_best;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "staged best latency {staged_best} vs sim-only {sim_best} (ratio {ratio})"
    );
}

fn reference_fingerprint() -> runtime::Fingerprint {
    let w = suites::gemm_workload("fp-probe", 128, 96, 64);
    let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
        .pe_array(16, 16)
        .scratchpad_kb(256)
        .banks(4)
        .build()
        .unwrap();
    let opts = sw_opt::explorer::ExplorerOptions::default();
    let mut fp = Fingerprinter::new();
    w.fingerprint_into(&mut fp);
    opts.fingerprint_into(&mut fp);
    cfg.fingerprint_into(&mut fp);
    BackendKind::TraceSim.fingerprint_into(&mut fp);
    fp.finish()
}

#[test]
fn fingerprints_are_stable_across_processes() {
    // The persistent cache is only sound if fingerprints computed in one
    // process match those computed in another. The child branch (re-exec
    // of this very test with a marker env var) prints its fingerprint;
    // the parent compares.
    let fp = reference_fingerprint();
    if std::env::var("HASCO_FP_CHILD").is_ok() {
        println!("HASCO_FP={fp}");
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let output = std::process::Command::new(exe)
        .args([
            "fingerprints_are_stable_across_processes",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("HASCO_FP_CHILD", "1")
        .output()
        .expect("child test process runs");
    assert!(output.status.success(), "child process failed: {output:?}");
    // libtest may merge the marker into its own "test ..." line, so
    // search within lines rather than at line starts.
    let stdout = String::from_utf8_lossy(&output.stdout);
    let child_fp = stdout
        .split("HASCO_FP=")
        .nth(1)
        .map(|rest| rest.split_whitespace().next().unwrap_or(""))
        .expect("child printed its fingerprint");
    assert_eq!(
        child_fp,
        fp.to_string(),
        "fingerprint changed across processes"
    );
}

#[test]
fn persisted_cache_is_portable_between_problem_instances() {
    // Save from one HwProblem, load into a freshly constructed one (as a
    // new process would), and verify the warm instance answers the same
    // batch without recomputing.
    let generator = GemminiGenerator::new();
    let wls = workloads();
    let sw = CoDesignOptions::quick(0).sw_inner;
    let points = sample_points(&generator, 6);
    let mut path = std::env::temp_dir();
    path.push(format!("hasco-portable-cache-{}.bin", std::process::id()));

    let mut first = HwProblem::new(&generator, &wls, sw.clone(), 0);
    let cold_responses = first.evaluate_batch(&points);
    let saved = first.save_cache(&path).unwrap();
    assert!(saved > 0);

    let mut second = HwProblem::new(&generator, &wls, sw, 0);
    assert_eq!(second.load_cache(&path), saved);
    let warm_responses = second.evaluate_batch(&points);
    assert_eq!(cold_responses, warm_responses);
    let stats = second.cache_stats();
    assert_eq!(
        stats.misses, 0,
        "a warm cache must answer every pair: {stats:?}"
    );
    std::fs::remove_file(&path).ok();
}
