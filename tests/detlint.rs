//! The static determinism lint, run as a tier-1 test.
//!
//! `tests/runtime_determinism.rs` *samples* the determinism contract
//! dynamically; this test enforces it statically over every shipped
//! source file, exactly as `cargo run -p detlint` and the CI gate do:
//! same config (`detlint.toml`), same scan, same rules. It also proves
//! the enforcement is live — re-introducing a violation or deleting any
//! single suppression pragma must fail with a `file:line` diagnostic.

use std::fs;
use std::path::PathBuf;

use detlint::{lint_source, lint_workspace, render_text, Config};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn workspace_config() -> Config {
    Config::load(&workspace_root()).expect("detlint.toml parses")
}

#[test]
fn workspace_is_detlint_clean() {
    let report = lint_workspace(&workspace_root(), &workspace_config()).expect("scan succeeds");
    assert!(
        report.files.len() > 50,
        "scan looks truncated: only {} files",
        report.files.len()
    );
    assert!(report.is_clean(), "\n{}", render_text(&report));
}

#[test]
fn reintroducing_a_violation_fails_with_a_span() {
    let root = workspace_root();
    let config = workspace_config();
    // Append a fresh wall-clock read to a real, currently-clean file and
    // lint the tampered source in memory.
    let rel = "crates/core/src/engine.rs";
    let clean = fs::read_to_string(root.join(rel)).expect("file exists");
    let tampered =
        format!("{clean}\nfn detlint_tamper() {{ let _ = std::time::Instant::now(); }}\n");
    let found = lint_source(rel, &tampered, &config);
    let expected_line = tampered.lines().count() as u32;
    assert!(
        found
            .iter()
            .any(|v| v.rule == "wall-clock" && v.file == rel && v.line == expected_line),
        "tampering went unnoticed: {found:?}"
    );
}

#[test]
fn every_suppression_pragma_is_load_bearing() {
    // Deleting any single `detlint-allow` pragma anywhere in the
    // workspace must resurface at least one violation — i.e. no pragma
    // is stale, and none can be removed without consequence. (The
    // unused-pragma meta rule enforces the same property from the other
    // side: a pragma that suppresses nothing fails the clean scan.)
    let root = workspace_root();
    let config = workspace_config();
    let report = lint_workspace(&root, &config).expect("scan succeeds");
    let mut exercised = 0;
    for rel in &report.files {
        let src = fs::read_to_string(root.join(rel)).expect("file exists");
        let pragma_lines: Vec<u32> = {
            let lexed = detlint::lexer::lex(&src);
            let (pragmas, _) = detlint::pragma::parse_pragmas(&src, &lexed.comments);
            pragmas.iter().map(|p| p.line).collect()
        };
        for line in pragma_lines {
            let mutated: String = src
                .lines()
                .enumerate()
                .map(|(i, l)| {
                    if i + 1 == line as usize {
                        // Defuse the marker; the comment itself stays, so
                        // only the suppression disappears.
                        l.replacen("detlint-allow", "detlint-disabled", 1)
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            let found = lint_source(rel, &mutated, &config);
            assert!(
                !found.is_empty(),
                "deleting the pragma at {rel}:{line} went unnoticed"
            );
            exercised += 1;
        }
    }
    assert!(
        exercised >= 20,
        "expected to exercise the workspace's pragmas, found only {exercised}"
    );
}

#[test]
fn desynchronizing_a_real_wire_impl_fails_with_both_spans() {
    // Delete one field read from the real `CoDesignOptions` decode impl
    // in `crates/net/src/wire.rs` and the wire-drift rule must report
    // the now-unread field with a two-span diagnostic: the violation
    // anchors on the encode half, and the message carries the decode
    // half's own `file:line`.
    let root = workspace_root();
    let config = workspace_config();
    let rel = "crates/net/src/wire.rs";
    let clean = fs::read_to_string(root.join(rel)).expect("file exists");
    let drop_line = |needle: &str| -> String {
        assert!(clean.contains(needle), "tamper target moved: {needle}");
        clean
            .lines()
            .filter(|l| !l.contains(needle))
            .collect::<Vec<_>>()
            .join("\n")
    };

    // Dropping the final field read leaves a field encode writes but
    // decode never consumes.
    let found = lint_source(
        rel,
        &drop_line("opts.surrogate_full_refit = Wire::decode(r)?;"),
        &config,
    );
    let drift = found
        .iter()
        .find(|v| v.rule == "wire-drift" && v.message.contains("field `surrogate_full_refit`"))
        .unwrap_or_else(|| panic!("desynchronized decode went unnoticed: {found:#?}"));
    assert_eq!(drift.file, rel);
    assert!(
        drift.snippet.contains("self.surrogate_full_refit.encode"),
        "{drift:?}"
    );
    assert!(
        drift.message.contains(&format!("{rel}:")),
        "message lacks the decode half's span: {drift:?}"
    );

    // Dropping a mid-sequence read shifts every later field and shows up
    // as an order disagreement at the first divergence.
    let found = lint_source(rel, &drop_line("opts.seed = Wire::decode(r)?;"), &config);
    let drift = found
        .iter()
        .find(|v| v.rule == "wire-drift")
        .unwrap_or_else(|| panic!("shifted decode sequence went unnoticed: {found:#?}"));
    assert!(
        drift.message.contains("disagree on field order"),
        "{drift:?}"
    );
    assert!(
        drift.message.contains(&format!("{rel}:")),
        "message lacks the encode half's span: {drift:?}"
    );
}

#[test]
fn json_report_carries_schema_and_per_rule_counts() {
    // CI asserts on this exact layout; pin it from the test side too so
    // a schema change cannot slip past both gates.
    let report = lint_workspace(&workspace_root(), &workspace_config()).expect("scan succeeds");
    let json = detlint::render_json(&report);
    assert!(json.contains("\"schema\": \"hasco-detlint-v2\""), "{json}");
    for rule in [
        "wall-clock",
        "iteration-order",
        "atomics",
        "ambient",
        "panic-safety",
        "wire-drift",
        "lock-discipline",
        "bad-pragma",
        "unused-pragma",
        "unused-allowlist",
    ] {
        assert!(
            json.contains(&format!("\"{rule}\": ")),
            "missing count for {rule}: {json}"
        );
    }
}

#[test]
fn stale_allowlist_entries_are_reported_at_their_toml_line() {
    // An [[allow]] entry that suppresses nothing anywhere must fail the
    // scan, pointing back at its own header line in detlint.toml.
    let mut config = workspace_config();
    let bogus = "\n[[allow]]\nrule = \"wall-clock\"\npath = \"crates/nonexistent.rs\"\nreason = \"stale entry for the unused-allowlist test\"\n";
    config.merge_toml(bogus).expect("well-formed entry");
    let entry_line = config
        .allows
        .iter()
        .find(|a| a.path == "crates/nonexistent.rs")
        .expect("entry merged")
        .line;
    let report = lint_workspace(&workspace_root(), &config).expect("scan succeeds");
    let stale = report
        .violations
        .iter()
        .find(|v| v.rule == "unused-allowlist")
        .unwrap_or_else(|| panic!("stale entry went unnoticed: {}", render_text(&report)));
    assert_eq!(stale.file, "detlint.toml");
    assert_eq!(stale.line, entry_line);
    assert!(stale.message.contains("crates/nonexistent.rs"), "{stale:?}");
}

#[test]
fn binary_and_test_agree_on_the_config() {
    // The checked-in detlint.toml must load, and its allowlist must be
    // non-trivial: the sanctioned clock owner is listed, with a reason.
    let config = workspace_config();
    assert!(config.allowed("wall-clock", "crates/runtime/src/telemetry.rs"));
    assert!(config
        .allows
        .iter()
        .all(|a| !a.reason.trim().is_empty() && a.reason.len() > 10));
    assert!(config.is_ordered_module("crates/runtime/src/cache.rs"));
}
