//! Failure-injection tests: the flow must degrade gracefully — clear
//! errors, no panics — under impossible inputs.

use accel_model::arch::AcceleratorConfig;
use hasco::codesign::{CoDesignOptions, CoDesigner};
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use hasco::HascoError;
use hw_gen::space::Generator;
use sw_opt::explorer::{ExplorerOptions, SoftwareExplorer};
use sw_opt::SwError;
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::suites;
use tensor_ir::workload::TensorApp;

#[test]
fn empty_application_is_rejected() {
    let input = InputDescription {
        app: TensorApp::new("empty", vec![]),
        method: GenerationMethod::Gemmini,
        constraints: Constraints::default(),
    };
    assert_eq!(
        CoDesigner::new(CoDesignOptions::quick(0))
            .run(&input)
            .unwrap_err(),
        HascoError::EmptyApp
    );
}

#[test]
fn tiny_scratchpad_fails_with_clear_error() {
    let mut cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
        .build()
        .unwrap();
    cfg.scratchpad_bytes = 128;
    let wl = suites::gemm_workload("g", 256, 256, 256);
    let err = SoftwareExplorer::new(0)
        .optimize(&wl, &cfg, &ExplorerOptions::default())
        .unwrap_err();
    assert_eq!(err, SwError::NoValidSchedule);
    assert!(err.to_string().contains("no valid schedule"));
}

#[test]
fn unmatchable_workload_reports_no_tensorize_choice() {
    // A GEMM workload cannot be tensorized onto a CONV2D intrinsic.
    let cfg = AcceleratorConfig::builder(IntrinsicKind::Conv2d)
        .build()
        .unwrap();
    let wl = suites::gemm_workload("g", 64, 64, 64);
    let err = SoftwareExplorer::new(0)
        .optimize(&wl, &cfg, &ExplorerOptions::default())
        .unwrap_err();
    assert!(matches!(err, SwError::NoTensorizeChoice { .. }));
}

#[test]
fn impossible_constraints_still_return_best_effort() {
    // Absurdly tight constraints: the flow returns the least-violating
    // solution and flags it, rather than failing.
    let input = InputDescription {
        app: TensorApp::new("t", vec![suites::gemm_workload("g", 256, 256, 256)]),
        method: GenerationMethod::Gemmini,
        constraints: Constraints::latency_power(1e-9, 1e-9),
    };
    let solution = CoDesigner::new(CoDesignOptions::quick(1))
        .run(&input)
        .unwrap();
    assert!(!solution.meets_constraints);
    assert!(solution.total.latency_ms > 0.0);
}

#[test]
fn generators_reject_malformed_points() {
    let g = hw_gen::GemminiGenerator::new();
    assert!(g.generate(&vec![]).is_err());
    assert!(g.generate(&vec![999; g.space().len()]).is_err());
    let c = hw_gen::ChiselGenerator::new(IntrinsicKind::Gemm);
    assert!(c.generate(&vec![0]).is_err());
}

#[test]
fn zero_extent_workloads_are_rejected_at_construction() {
    let bad = tensor_ir::Computation::builder("bad")
        .spatial("i", 0)
        .output("O", &["i"])
        .input("A", &["i"])
        .build();
    assert!(bad.is_err());
}

#[test]
fn invalid_accelerator_configs_never_reach_the_cost_model() {
    for builder_result in [
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .pe_array(0, 8)
            .build(),
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .banks(0)
            .build(),
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .dma(0, 128)
            .build(),
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .dma(64, 7)
            .build(),
    ] {
        assert!(builder_result.is_err());
    }
}
