//! The `hasco::Engine` service API: option validation at submit, queued
//! and mid-run cancellation, campaign fan-out with cross-scenario dedup
//! and aggregate progress events, the surrogate registry and its
//! warm-restart store, and persisted-store lifecycle (including age-based
//! GC).

use std::time::Duration;

use accel_model::BackendKind;
use hasco::codesign::{CoDesignOptions, CoDesigner, OptimizerKind};
use hasco::engine::{CoDesignRequest, Engine, EngineConfig};
use hasco::event::{CampaignEvent, RunEvent};
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use hasco::HascoError;
use tensor_ir::suites;
use tensor_ir::workload::TensorApp;

fn toy_input() -> InputDescription {
    InputDescription {
        app: TensorApp::new(
            "toy",
            vec![
                suites::gemm_workload("g1", 128, 128, 128),
                suites::gemm_workload("g2", 256, 128, 64),
            ],
        ),
        method: GenerationMethod::Gemmini,
        constraints: Constraints::default(),
    }
}

fn temp_cache(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hasco-engine-{name}-{}.bin", std::process::id()));
    p
}

#[test]
fn invalid_option_combinations_are_rejected_at_submit() {
    let engine = Engine::new(EngineConfig::default());
    let invalid = |opts: CoDesignOptions| {
        let err = match engine.submit(CoDesignRequest::new(toy_input(), opts)) {
            Err(err) => err,
            Ok(_) => panic!("submit accepted degenerate options"),
        };
        assert!(
            matches!(err, HascoError::InvalidOptions(_)),
            "expected InvalidOptions, got {err:?}"
        );
        err.to_string()
    };

    // Refine tier equal to the screen tier: staging would re-price with
    // the backend that already screened.
    let msg = invalid(CoDesignOptions::quick(0).with_refinement(BackendKind::Analytic, 2));
    assert!(msg.contains("refine tier equals the screen tier"), "{msg}");

    // The surrogate as the refine tier wraps itself.
    let msg = invalid(CoDesignOptions::quick(0).with_refinement(BackendKind::Surrogate, 2));
    assert!(msg.contains("self-referential"), "{msg}");

    // Adaptive staging with a zero budget can never grow.
    let mut opts = CoDesignOptions::quick(0);
    opts.adaptive_refinement = true;
    opts.refine_top_k = 0;
    let msg = invalid(opts);
    assert!(msg.contains("adaptive staging"), "{msg}");

    // Zero trial budget.
    let mut opts = CoDesignOptions::quick(0);
    opts.hw_trials = 0;
    invalid(opts);

    // The one-shot wrapper rejects the same combinations.
    assert!(matches!(
        CoDesigner::new(CoDesignOptions::quick(0).with_refinement(BackendKind::Analytic, 2))
            .run(&toy_input()),
        Err(HascoError::InvalidOptions(_))
    ));

    // The canonical configurations stay valid.
    CoDesignOptions::quick(0).validate().unwrap();
    CoDesignOptions::paper(0).validate().unwrap();
    CoDesignOptions::quick(0)
        .with_backend(BackendKind::Surrogate)
        .with_adaptive_refinement(BackendKind::TraceSim, 2)
        .validate()
        .unwrap();
}

#[test]
fn queued_jobs_cancel_before_they_start() {
    // One slot: while the first job occupies it, the second is still
    // queued — cancelling it there is deterministic.
    let engine = Engine::new(EngineConfig::default().with_job_slots(1));
    let first = engine
        .submit(CoDesignRequest::new(toy_input(), CoDesignOptions::quick(1)))
        .unwrap();
    let second = engine
        .submit(CoDesignRequest::new(toy_input(), CoDesignOptions::quick(2)))
        .unwrap();
    second.cancel();

    assert!(matches!(second.wait(), Err(HascoError::Cancelled)));
    let events: Vec<RunEvent> = second.events().collect();
    assert_eq!(events, vec![RunEvent::Cancelled]);
    // The running job is unaffected.
    assert!(first.wait().is_ok());
}

#[test]
fn midrun_cancellation_stops_a_job_early() {
    let engine = Engine::new(EngineConfig::default().with_job_slots(1));
    // A deliberately long job (big trial budget).
    let mut opts = CoDesignOptions::quick(3);
    opts.hw_trials = 200;
    let handle = engine
        .submit(CoDesignRequest::new(toy_input(), opts))
        .unwrap();
    // Wait for proof the job is running, then cancel.
    let mut events = handle.events();
    let started = events.next().expect("job emits Started");
    assert!(matches!(started, RunEvent::Started { .. }));
    handle.cancel();

    assert!(matches!(handle.wait(), Err(HascoError::Cancelled)));
    let tail: Vec<RunEvent> = events.collect();
    assert_eq!(tail.last(), Some(&RunEvent::Cancelled));
    // A cancelled job publishes no warm state: a follow-up identical job
    // starts exactly as cold as a first run would.
    let follow_up = engine
        .submit(CoDesignRequest::new(toy_input(), CoDesignOptions::quick(3)))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(follow_up.stats.warm_cache_entries, 0);
}

#[test]
fn campaign_dedups_identical_scenarios_and_warms_across_waves() {
    // Single slot — every scenario is its own wave, so later scenarios
    // deterministically start warm from earlier ones.
    let engine = Engine::new(EngineConfig::default().with_job_slots(1));
    let opts = CoDesignOptions::quick(11);
    // edge and cloud differ only in constraints: their evaluations are
    // identical, so the cloud run should be answered mostly from the
    // store. The third scenario repeats the first exactly (dedup).
    let edge = Constraints {
        max_power_mw: Some(2_000.0),
        ..Constraints::default()
    };
    let cloud = Constraints {
        max_power_mw: Some(20_000.0),
        ..Constraints::default()
    };
    let request = |constraints: Constraints, label: &str| {
        let mut input = toy_input();
        input.constraints = constraints;
        CoDesignRequest::new(input, opts.clone()).with_label(label)
    };
    let outcomes = engine
        .campaign(vec![
            request(edge, "edge"),
            request(cloud, "cloud"),
            request(edge, "edge-again"),
        ])
        .unwrap();

    assert_eq!(outcomes.len(), 3);
    assert_eq!(outcomes[0].label, "edge");
    assert_eq!(outcomes[0].shared_with, None);
    // Cross-scenario dedup through the shared store: the cloud run found
    // every (config, workload) evaluation already priced.
    assert!(
        outcomes[1].solution.stats.warm_cache_entries > 0,
        "cloud scenario saw no warmth from the edge scenario"
    );
    assert!(outcomes[1].solution.stats.cache.hits > 0);
    // Exact-duplicate dedup: the repeat never executed.
    assert_eq!(outcomes[2].shared_with.as_deref(), Some("edge"));
    assert_eq!(engine.jobs_executed(), 2);
    assert_eq!(
        outcomes[0].solution.accelerator,
        outcomes[2].solution.accelerator
    );
    assert_eq!(
        outcomes[0].solution.total.latency_cycles,
        outcomes[2].solution.total.latency_cycles
    );
    // Same evaluations, different constraint checks — the accelerators
    // still agree here because the toy app meets both constraint sets.
    assert_eq!(
        outcomes[0].solution.accelerator,
        outcomes[1].solution.accelerator
    );
}

#[test]
fn campaign_results_do_not_depend_on_slot_count() {
    let matrix = || {
        (0..4)
            .map(|i| {
                CoDesignRequest::new(toy_input(), CoDesignOptions::quick(20 + i))
                    .with_label(format!("s{i}"))
            })
            .collect::<Vec<_>>()
    };
    let serial = Engine::new(EngineConfig::default().with_job_slots(1))
        .campaign(matrix())
        .unwrap();
    let wide = Engine::new(EngineConfig::default().with_job_slots(4))
        .campaign(matrix())
        .unwrap();
    for (a, b) in serial.iter().zip(&wide) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.solution.accelerator, b.solution.accelerator);
        assert_eq!(a.solution.hw_history, b.solution.hw_history);
        assert_eq!(
            a.solution.total.latency_cycles,
            b.solution.total.latency_cycles
        );
    }
}

#[test]
fn store_persists_across_engine_lifetimes_and_gc_expires_it() {
    let path = temp_cache("persist-gc");
    std::fs::remove_file(&path).ok();
    let config = || {
        EngineConfig::default()
            .with_job_slots(1)
            .with_cache_path(&path)
    };

    // First engine: run one job, persist.
    let cold = {
        let engine = Engine::new(config());
        let solution = engine
            .submit(CoDesignRequest::new(toy_input(), CoDesignOptions::quick(9)))
            .unwrap()
            .wait()
            .unwrap();
        assert!(engine.persist().unwrap() > 0);
        solution
    };
    assert!(path.exists());

    // Second engine: loads the image, so the identical job starts warm.
    {
        let engine = Engine::new(config());
        assert!(engine.warm_entries() > 0);
        let warm = engine
            .submit(CoDesignRequest::new(toy_input(), CoDesignOptions::quick(9)))
            .unwrap()
            .wait()
            .unwrap();
        assert!(warm.stats.warm_cache_entries > 0);
        assert_eq!(cold.accelerator, warm.accelerator);
        assert_eq!(cold.hw_history, warm.hw_history);
        assert!(warm.stats.cache.misses < cold.stats.cache.misses);
    }

    // Third engine: a zero max-age persists an empty (fully GC'd) image
    // once the entries are at least a second old.
    std::thread::sleep(Duration::from_millis(1200));
    {
        let engine = Engine::new(config().with_cache_max_age(Duration::ZERO));
        assert!(engine.warm_entries() > 0);
        // Explicit in-memory compaction removes the aged entries...
        assert!(engine.compact(Duration::ZERO) > 0);
        assert_eq!(engine.warm_entries(), 0);
        // ...and the max-age persist GCs the file image the same way
        // (the file still held the aged entries until now).
        assert_eq!(engine.persist().unwrap(), 0, "aged entries must be GC'd");
    }
    let engine = Engine::new(config());
    assert_eq!(engine.warm_entries(), 0, "GC'd image must load empty");
    std::fs::remove_file(&path).ok();
}

#[test]
fn surrogate_registry_carries_training_across_jobs() {
    let engine = Engine::new(EngineConfig::default().with_job_slots(1));
    let opts = || {
        let mut o = CoDesignOptions::quick(13)
            .with_backend(BackendKind::Surrogate)
            .with_adaptive_refinement(BackendKind::TraceSim, 2);
        o.hw_trials = 6;
        o
    };
    let first = engine
        .submit(CoDesignRequest::new(toy_input(), opts()))
        .unwrap()
        .wait()
        .unwrap();
    assert!(first.stats.surrogate_samples > 0);

    // The second job forks the registered surrogate: it starts with the
    // first job's training set (plus whatever it adds itself) and re-uses
    // the first job's memo entries for the shared training generation.
    let second = engine
        .submit(CoDesignRequest::new(toy_input(), opts()))
        .unwrap()
        .wait()
        .unwrap();
    assert!(
        second.stats.surrogate_samples >= first.stats.surrogate_samples,
        "fork lost training: {} vs {}",
        second.stats.surrogate_samples,
        first.stats.surrogate_samples
    );
    assert!(
        second.stats.warm_cache_entries > 0,
        "surrogate jobs share no warmth"
    );
}

#[test]
fn cancel_after_completion_returns_the_solution() {
    // A cancel racing a just-completed job must not convert an
    // already-computed solution into `Cancelled`.
    let engine = Engine::new(EngineConfig::default());
    let handle = engine
        .submit(CoDesignRequest::new(toy_input(), CoDesignOptions::quick(7)))
        .unwrap();
    while !handle.is_finished() {
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.cancel();
    let result = handle.wait();
    assert!(
        result.is_ok(),
        "completed-then-cancelled job lost its solution: {result:?}"
    );
    // The late cancel also does not suppress the publication: a repeat
    // job starts warm.
    let repeat = engine
        .submit(CoDesignRequest::new(toy_input(), CoDesignOptions::quick(7)))
        .unwrap()
        .wait()
        .unwrap();
    assert!(repeat.stats.warm_cache_entries > 0);
}

#[test]
fn events_after_wait_replay_the_full_history() {
    // Subscribing after the job finished must replay the identical
    // stream a subscribe-before-run consumer saw.
    let opts = || CoDesignOptions::quick(37).with_refinement(BackendKind::TraceSim, 2);
    let live = {
        let engine = Engine::new(EngineConfig::default().with_job_slots(1));
        let handle = engine
            .submit(CoDesignRequest::new(toy_input(), opts()).with_label("probe"))
            .unwrap();
        let events: Vec<RunEvent> = handle.events().collect();
        handle.wait().unwrap();
        events
    };
    let replayed = {
        let engine = Engine::new(EngineConfig::default().with_job_slots(1));
        let handle = engine
            .submit(CoDesignRequest::new(toy_input(), opts()).with_label("probe"))
            .unwrap();
        handle.wait().unwrap();
        let events: Vec<RunEvent> = handle.events().collect();
        events
    };
    assert!(!live.is_empty());
    assert_eq!(live, replayed, "post-wait replay diverged from live stream");
}

#[test]
fn campaign_events_attribute_jobs_and_count_dedup_aware_progress() {
    let engine = Engine::new(EngineConfig::default().with_job_slots(1));
    let opts = CoDesignOptions::quick(11);
    let request = |label: &str| CoDesignRequest::new(toy_input(), opts.clone()).with_label(label);
    // Two identical scenarios (dedup) plus a distinct-seed third.
    let distinct =
        CoDesignRequest::new(toy_input(), CoDesignOptions::quick(12)).with_label("other");
    let (outcomes, events) = engine
        .campaign_events(vec![request("a"), request("a-again"), distinct])
        .unwrap();
    assert_eq!(outcomes.len(), 3);
    assert_eq!(engine.jobs_executed(), 2, "duplicate must not execute");

    let events: Vec<CampaignEvent> = events.collect();
    assert_eq!(
        events.first(),
        Some(&CampaignEvent::Planned {
            scenarios: 3,
            unique_jobs: 2,
            deduplicated: 1
        })
    );
    // Per-request attribution: job events for both executed labels, none
    // for the deduplicated one.
    let job_labels: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            CampaignEvent::Job { label, .. } => Some(label.as_str()),
            _ => None,
        })
        .collect();
    assert!(job_labels.contains(&"a") && job_labels.contains(&"other"));
    assert!(
        !job_labels.contains(&"a-again"),
        "deduplicated scenario must not run (or emit job events)"
    );
    // Dedup-aware progress: every input scenario completes exactly once,
    // the duplicate attributed to its representative, and the counter
    // reaches the matrix size.
    let done: Vec<(&str, Option<&str>, usize, usize)> = events
        .iter()
        .filter_map(|e| match e {
            CampaignEvent::ScenarioDone {
                label,
                shared_with,
                completed,
                total,
            } => Some((label.as_str(), shared_with.as_deref(), *completed, *total)),
            _ => None,
        })
        .collect();
    assert_eq!(
        done,
        vec![
            ("a", None, 1, 3),
            ("a-again", Some("a"), 2, 3),
            ("other", None, 3, 3),
        ]
    );
    // The aggregate stream keeps each job's events contiguous and ends
    // every job with its terminal event right before the ScenarioDone
    // markers.
    let solved = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                CampaignEvent::Job {
                    event: RunEvent::Solved { .. },
                    ..
                }
            )
        })
        .count();
    assert_eq!(solved, 2);
}

#[test]
fn campaign_events_do_not_change_outcomes() {
    let matrix = || {
        (0..3)
            .map(|i| {
                CoDesignRequest::new(toy_input(), CoDesignOptions::quick(40 + i))
                    .with_label(format!("s{i}"))
            })
            .collect::<Vec<_>>()
    };
    let quiet = Engine::new(EngineConfig::default().with_job_slots(2))
        .campaign(matrix())
        .unwrap();
    let (streamed, _events) = Engine::new(EngineConfig::default().with_job_slots(2))
        .campaign_events(matrix())
        .unwrap();
    for (a, b) in quiet.iter().zip(&streamed) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.solution.accelerator, b.solution.accelerator);
        assert_eq!(a.solution.hw_history, b.solution.hw_history);
        assert_eq!(a.solution.stats, b.solution.stats);
    }
}

#[test]
fn surrogate_store_persists_training_across_engine_lifetimes() {
    let cache = temp_cache("ss-cache");
    let store = temp_cache("ss-store");
    std::fs::remove_file(&cache).ok();
    std::fs::remove_file(&store).ok();
    let config = || {
        EngineConfig::default()
            .with_job_slots(1)
            .with_cache_path(&cache)
            .with_surrogate_store(&store)
    };
    let opts = || {
        let mut o = CoDesignOptions::quick(13)
            .with_backend(BackendKind::Surrogate)
            .with_adaptive_refinement(BackendKind::TraceSim, 2);
        o.hw_trials = 6;
        o
    };

    // First engine: one surrogate job; the store image is written at
    // wait() (observation-ordered), before any explicit persist.
    let first = {
        let engine = Engine::new(config());
        assert_eq!(engine.restored_surrogate_backends(), 0);
        let solution = engine
            .submit(CoDesignRequest::new(toy_input(), opts()))
            .unwrap()
            .wait()
            .unwrap();
        assert!(store.exists(), "wait() must save the surrogate store");
        engine.persist().unwrap();
        solution
    };
    assert!(first.stats.surrogate_samples > 0);

    // Second engine: restores the registry — non-zero restored
    // generation — and the repeat job starts from the first job's
    // training instead of re-paying it.
    {
        let engine = Engine::new(config());
        assert_eq!(engine.restored_surrogate_backends(), 1);
        assert!(
            engine.restored_surrogate_generation() > 0,
            "restored generation must reflect the saved training"
        );
        assert_eq!(engine.surrogate_backends(), 1);
        let warm = engine
            .submit(CoDesignRequest::new(toy_input(), opts()))
            .unwrap()
            .wait()
            .unwrap();
        assert!(
            warm.stats.surrogate_samples >= first.stats.surrogate_samples,
            "restore lost training: {} vs {}",
            warm.stats.surrogate_samples,
            first.stats.surrogate_samples
        );
        assert!(
            warm.stats.warm_cache_entries > 0,
            "restored generation must make the persisted memo reachable"
        );
    }

    // A corrupted store is a clean cold start, never an error.
    {
        let mut bytes = std::fs::read(&store).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&store, &bytes).unwrap();
        let engine = Engine::new(config());
        assert_eq!(engine.restored_surrogate_backends(), 0);
        assert_eq!(engine.restored_surrogate_generation(), 0);
        let cold = engine
            .submit(CoDesignRequest::new(toy_input(), opts()))
            .unwrap()
            .wait()
            .unwrap();
        assert!(cold.total.latency_cycles > 0.0);
    }
    std::fs::remove_file(&cache).ok();
    std::fs::remove_file(&store).ok();
}

#[test]
fn baseline_optimizers_drive_the_full_pipeline() {
    // The optimizer axis: random search and NSGA-II run the identical
    // engine path and report their own history.
    for kind in [OptimizerKind::Random, OptimizerKind::Nsga2] {
        let opts = CoDesignOptions::quick(17).with_optimizer(kind);
        let solution = CoDesigner::new(opts).run(&toy_input()).unwrap();
        assert_eq!(solution.hw_history.optimizer, kind.as_str());
        assert!(!solution.hw_history.evaluations.is_empty(), "{kind}");
        assert!(solution.total.latency_cycles > 0.0);
    }
}

#[test]
fn one_shot_codesigner_is_bit_identical_to_an_engine_submission() {
    let input = toy_input();
    let opts = CoDesignOptions::quick(21);
    let one_shot = CoDesigner::new(opts.clone()).run(&input).unwrap();
    let engine = Engine::new(EngineConfig::default());
    let submitted = engine
        .submit(CoDesignRequest::new(input, opts))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(one_shot.accelerator, submitted.accelerator);
    assert_eq!(one_shot.hw_history, submitted.hw_history);
    assert_eq!(one_shot.stats, submitted.stats);
    assert_eq!(
        one_shot.total.latency_cycles,
        submitted.total.latency_cycles
    );
}
