//! The parallel evaluation runtime's contract, end to end: fixed-seed
//! co-design runs are bitwise identical at any thread count, the memoizing
//! cost-model cache deduplicates equivalent work, and (on hosts with
//! enough cores) parallel evaluation is actually faster.

use hasco::codesign::{CoDesignOptions, CoDesigner};
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use tensor_ir::suites;
use tensor_ir::workload::TensorApp;

fn mixed_input(n_workloads: usize) -> InputDescription {
    let all = vec![
        suites::gemm_workload("g1", 256, 256, 256),
        suites::conv2d_workload("c1", 64, 64, 28, 28, 3, 3),
        suites::gemm_workload("g2", 128, 256, 128),
        suites::conv2d_workload("c2", 64, 32, 56, 56, 3, 3),
    ];
    InputDescription {
        app: TensorApp::new("mixed", all.into_iter().take(n_workloads).collect()),
        method: GenerationMethod::Gemmini,
        constraints: Constraints::default(),
    }
}

#[test]
fn parallel_and_serial_codesign_are_bitwise_identical() {
    let input = mixed_input(2);
    let serial = CoDesigner::new(CoDesignOptions::quick(42))
        .run(&input)
        .unwrap();
    let parallel = CoDesigner::new(CoDesignOptions::quick(42).with_threads(4))
        .run(&input)
        .unwrap();

    // The chosen accelerator, every workload's optimized software, and the
    // application totals must match exactly (not approximately).
    assert_eq!(serial.accelerator, parallel.accelerator);
    assert_eq!(serial.total.latency_cycles, parallel.total.latency_cycles);
    assert_eq!(serial.total.power_mw, parallel.total.power_mw);
    assert_eq!(serial.total.area_mm2, parallel.total.area_mm2);
    assert_eq!(serial.meets_constraints, parallel.meets_constraints);
    assert_eq!(serial.per_workload.len(), parallel.per_workload.len());
    for (a, b) in serial.per_workload.iter().zip(&parallel.per_workload) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.metrics.latency_cycles, b.metrics.latency_cycles);
        assert_eq!(a.schedule.choice.var_map, b.schedule.choice.var_map);
        assert_eq!(a.program, b.program);
    }

    // The whole exploration history — and therefore the Pareto front —
    // must be identical, evaluation for evaluation.
    assert_eq!(serial.hw_history, parallel.hw_history);
    let front_a: Vec<_> = serial.hw_history.pareto_front();
    let front_b: Vec<_> = parallel.hw_history.pareto_front();
    assert_eq!(front_a, front_b);

    // And the runs really used different runtime configurations.
    assert_eq!(serial.stats.threads, 1);
    assert_eq!(parallel.stats.threads, 4);
}

#[test]
fn auto_thread_selection_matches_serial_too() {
    // threads = 0 resolves to every available core — whatever that is on
    // the host, the solution must not change.
    let input = mixed_input(1);
    let serial = CoDesigner::new(CoDesignOptions::quick(7))
        .run(&input)
        .unwrap();
    let auto = CoDesigner::new(CoDesignOptions::quick(7).with_threads(0))
        .run(&input)
        .unwrap();
    assert_eq!(serial.accelerator, auto.accelerator);
    assert_eq!(serial.hw_history, auto.hw_history);
}

#[test]
fn work_stealing_and_thread_count_never_change_results() {
    // The extended PR-invariant: the work-stealing scheduler, the
    // shared-counter scheduler, and the serial path all produce the
    // bitwise-identical solution at any thread count.
    let input = mixed_input(2);
    let reference = CoDesigner::new(CoDesignOptions::quick(19))
        .run(&input)
        .unwrap();
    for (threads, stealing) in [(1, false), (3, true), (4, true), (4, false)] {
        let solution = CoDesigner::new(
            CoDesignOptions::quick(19)
                .with_threads(threads)
                .with_work_stealing(stealing),
        )
        .run(&input)
        .unwrap();
        assert_eq!(
            reference.accelerator, solution.accelerator,
            "threads={threads} stealing={stealing}"
        );
        assert_eq!(
            reference.hw_history, solution.hw_history,
            "threads={threads} stealing={stealing}"
        );
        assert_eq!(
            reference.total.latency_cycles, solution.total.latency_cycles,
            "threads={threads} stealing={stealing}"
        );
    }
}

#[test]
fn fidelity_staged_runs_are_thread_count_independent() {
    // Staging picks survivors from screened batch responses; that choice
    // — and therefore the whole optimizer trajectory — must not depend on
    // worker count or stealing.
    let input = mixed_input(2);
    let opts = |threads: usize, stealing: bool| {
        CoDesignOptions::quick(23)
            .with_refinement(accel_model::BackendKind::TraceSim, 2)
            .with_threads(threads)
            .with_work_stealing(stealing)
    };
    let serial = CoDesigner::new(opts(1, false)).run(&input).unwrap();
    let parallel = CoDesigner::new(opts(4, true)).run(&input).unwrap();
    assert_eq!(serial.accelerator, parallel.accelerator);
    assert_eq!(serial.hw_history, parallel.hw_history);
    assert_eq!(serial.total.latency_cycles, parallel.total.latency_cycles);
    assert_eq!(
        serial.stats.refine_explorations,
        parallel.stats.refine_explorations
    );
    assert!(serial.stats.refine_explorations > 0);
}

#[test]
fn adaptive_topk_trajectories_are_identical_across_threads_and_stealing() {
    // The adaptive controller resizes the refine budget from screen-vs-
    // refine rank disagreement; that evidence — and therefore the whole
    // top-k trajectory, the Pareto front, and the solution — must be a
    // pure function of batch content at 1, 2, and 8 threads, with and
    // without work-stealing.
    let input = mixed_input(2);
    let opts = |threads: usize, stealing: bool| {
        CoDesignOptions::quick(29)
            .with_adaptive_refinement(accel_model::BackendKind::TraceSim, 3)
            .with_threads(threads)
            .with_work_stealing(stealing)
    };
    let reference = CoDesigner::new(opts(1, false)).run(&input).unwrap();
    assert!(
        !reference.stats.refine_topk_trajectory.is_empty(),
        "adaptive runs must record a top-k trajectory"
    );
    assert!(reference.stats.refine_explorations > 0);
    for (threads, stealing) in [(2, true), (8, true), (8, false)] {
        let solution = CoDesigner::new(opts(threads, stealing))
            .run(&input)
            .unwrap();
        assert_eq!(
            reference.stats.refine_topk_trajectory, solution.stats.refine_topk_trajectory,
            "trajectory diverged at threads={threads} stealing={stealing}"
        );
        assert_eq!(
            reference.hw_history, solution.hw_history,
            "threads={threads} stealing={stealing}"
        );
        assert_eq!(
            reference.hw_history.pareto_front(),
            solution.hw_history.pareto_front(),
            "Pareto front diverged at threads={threads} stealing={stealing}"
        );
        assert_eq!(reference.accelerator, solution.accelerator);
        assert_eq!(
            reference.total.latency_cycles,
            solution.total.latency_cycles
        );
        assert_eq!(
            reference.stats.refine_explorations,
            solution.stats.refine_explorations
        );
    }
}

#[test]
fn incremental_and_full_refit_surrogate_engines_are_bit_identical() {
    // The surrogate's default incremental-Cholesky trainer (O(n²) per
    // observation) against the from-scratch reference refit (O(n³)), on
    // a surrogate-heavy staged run: the learning trajectory, the final
    // accelerator, and every reported metric must agree to the bit —
    // the speed campaign is not allowed to move a single result.
    let input = mixed_input(2);
    let opts = |full_refit: bool| {
        CoDesignOptions::quick(31)
            .with_backend(accel_model::BackendKind::Surrogate)
            .with_adaptive_refinement(accel_model::BackendKind::TraceSim, 2)
            .with_threads(2)
            .with_surrogate_full_refit(full_refit)
    };
    let incremental = CoDesigner::new(opts(false)).run(&input).unwrap();
    let reference = CoDesigner::new(opts(true)).run(&input).unwrap();
    assert!(incremental.stats.surrogate_samples > 0);
    assert_eq!(
        incremental.stats.surrogate_samples,
        reference.stats.surrogate_samples
    );
    assert_eq!(
        incremental.stats.surrogate_trusted,
        reference.stats.surrogate_trusted
    );
    assert_eq!(incremental.hw_history, reference.hw_history);
    assert_eq!(incremental.accelerator, reference.accelerator);
    assert_eq!(
        incremental.total.latency_cycles.to_bits(),
        reference.total.latency_cycles.to_bits()
    );
    assert_eq!(incremental.total, reference.total);
}

#[test]
fn surrogate_screen_tier_is_thread_count_independent() {
    // The surrogate trains between batches (serially, in batch order);
    // its training trajectory — and everything priced through it — must
    // not depend on worker count.
    let input = mixed_input(2);
    let opts = |threads: usize| {
        CoDesignOptions::quick(31)
            .with_backend(accel_model::BackendKind::Surrogate)
            .with_adaptive_refinement(accel_model::BackendKind::TraceSim, 2)
            .with_threads(threads)
    };
    let serial = CoDesigner::new(opts(1)).run(&input).unwrap();
    let parallel = CoDesigner::new(opts(4)).run(&input).unwrap();
    assert!(serial.stats.surrogate_samples > 0);
    assert_eq!(
        serial.stats.surrogate_samples,
        parallel.stats.surrogate_samples
    );
    assert_eq!(
        serial.stats.surrogate_trusted,
        parallel.stats.surrogate_trusted
    );
    assert_eq!(serial.hw_history, parallel.hw_history);
    assert_eq!(serial.accelerator, parallel.accelerator);
    assert_eq!(serial.total.latency_cycles, parallel.total.latency_cycles);
}

#[test]
fn memo_cache_deduplicates_equivalent_workloads() {
    // Two workloads with identical loop nests (names differ — names are
    // reporting-only) share evaluation fingerprints, so every design
    // point's second workload is answered from the memo cache.
    let input = InputDescription {
        app: TensorApp::new(
            "twins",
            vec![
                suites::gemm_workload("left", 256, 256, 256),
                suites::gemm_workload("right", 256, 256, 256),
            ],
        ),
        method: GenerationMethod::Gemmini,
        constraints: Constraints::default(),
    };
    let solution = CoDesigner::new(CoDesignOptions::quick(3).with_threads(2))
        .run(&input)
        .unwrap();
    let stats = solution.stats;
    assert!(
        stats.cache.hits >= stats.hw_evaluations as u64,
        "expected one memo hit per evaluated point, got {} hits over {} evaluations",
        stats.cache.hits,
        stats.hw_evaluations,
    );
    // Twins must also land on the same optimized latency.
    assert_eq!(
        solution.per_workload[0].metrics.latency_cycles,
        solution.per_workload[1].metrics.latency_cycles,
    );
}

#[test]
fn parallel_codesign_is_faster_on_multicore_hosts() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores < 4 {
        eprintln!("skipping speedup check: only {cores} core(s) available");
        return;
    }
    let input = mixed_input(4);
    let mut opts = CoDesignOptions::quick(11);
    opts.hw_trials = 6;

    // Warm up (build caches, fault pages) so timing compares steady state.
    let _ = CoDesigner::new(opts.clone()).run(&input).unwrap();

    // Best-of-two per mode: min wall time is far less sensitive to a
    // concurrent test binary stealing the cores mid-run than a single
    // sample, and a 4-workload quick() run has enough parallel work that
    // real speedup dwarfs the remaining noise.
    let mut serial = None;
    let mut t_serial = std::time::Duration::MAX;
    let mut t_parallel = std::time::Duration::MAX;
    let mut parallel = None;
    for _ in 0..2 {
        let t = std::time::Instant::now();
        serial = Some(CoDesigner::new(opts.clone()).run(&input).unwrap());
        t_serial = t_serial.min(t.elapsed());

        let t = std::time::Instant::now();
        parallel = Some(
            CoDesigner::new(opts.clone().with_threads(4))
                .run(&input)
                .unwrap(),
        );
        t_parallel = t_parallel.min(t.elapsed());
    }
    let (serial, parallel) = (serial.unwrap(), parallel.unwrap());

    assert_eq!(
        serial.hw_history, parallel.hw_history,
        "speedup must not change results"
    );
    assert!(
        t_parallel.as_secs_f64() < t_serial.as_secs_f64() * 0.9,
        "threads = 4 ({t_parallel:?}) should measurably beat threads = 1 ({t_serial:?}) on {cores} cores",
    );
    eprintln!(
        "codesign speedup on {cores} cores: {:.2}x ({t_serial:?} -> {t_parallel:?})",
        t_serial.as_secs_f64() / t_parallel.as_secs_f64(),
    );
}

mod engine_concurrency {
    //! The engine extension of the invariant: *concurrent job
    //! interleaving never changes any job's results* — solutions, run
    //! statistics, and event streams are bit-identical whether a job runs
    //! alone through the one-shot API or alongside other jobs on a
    //! multi-slot engine.

    use super::mixed_input;
    use hasco::codesign::{CoDesignOptions, CoDesigner};
    use hasco::engine::{CoDesignRequest, Engine, EngineConfig};
    use hasco::event::RunEvent;
    use hasco::input::InputDescription;

    fn requests() -> Vec<(InputDescription, CoDesignOptions)> {
        vec![
            (mixed_input(2), CoDesignOptions::quick(42)),
            (mixed_input(1), CoDesignOptions::quick(7)),
            // A staged job, and one with stealing disabled at 2 threads
            // (steal counts are deterministically zero either way).
            (
                mixed_input(2),
                CoDesignOptions::quick(23).with_refinement(accel_model::BackendKind::TraceSim, 2),
            ),
            (
                mixed_input(2),
                CoDesignOptions::quick(19)
                    .with_threads(2)
                    .with_work_stealing(false),
            ),
        ]
    }

    #[test]
    fn concurrent_engine_jobs_match_one_shot_runs_bit_for_bit() {
        // References: each job alone, through the one-shot wrapper.
        let solo: Vec<_> = requests()
            .iter()
            .map(|(input, opts)| CoDesigner::new(opts.clone()).run(input).unwrap())
            .collect();

        // The same jobs submitted together on a fresh 4-slot engine: all
        // four run concurrently, isolated from each other (nothing was
        // published before any of them was admitted).
        let engine = Engine::new(EngineConfig::default().with_job_slots(4));
        let handles: Vec<_> = requests()
            .into_iter()
            .map(|(input, opts)| {
                engine
                    .submit(CoDesignRequest::new(input, opts))
                    .expect("submit succeeds")
            })
            .collect();
        for (handle, reference) in handles.iter().zip(&solo) {
            let concurrent = handle.wait().unwrap();
            assert_eq!(reference.accelerator, concurrent.accelerator);
            assert_eq!(reference.hw_history, concurrent.hw_history);
            assert_eq!(
                reference.total.latency_cycles,
                concurrent.total.latency_cycles
            );
            assert_eq!(reference.per_workload.len(), concurrent.per_workload.len());
            for (a, b) in reference.per_workload.iter().zip(&concurrent.per_workload) {
                assert_eq!(a.program, b.program);
                assert_eq!(a.metrics.latency_cycles, b.metrics.latency_cycles);
            }
            // Bit-identical runtime statistics too: same cache hit/miss
            // counts, same warm state (none), same eval counts.
            assert_eq!(reference.stats, concurrent.stats);
        }
        assert_eq!(engine.jobs_executed(), 4);
    }

    #[test]
    fn warm_second_job_reports_cache_hits_from_the_first() {
        let engine = Engine::new(EngineConfig::default().with_job_slots(2));
        let input = mixed_input(2);
        let request = || CoDesignRequest::new(input.clone(), CoDesignOptions::quick(5));

        let first = engine.submit(request()).unwrap().wait().unwrap();
        assert_eq!(first.stats.warm_cache_entries, 0);

        // The wait above published the first job's memo entries, so an
        // identical second job starts warm and recomputes strictly less —
        // while producing the identical solution.
        let second = engine.submit(request()).unwrap().wait().unwrap();
        assert!(
            second.stats.warm_cache_entries > 0,
            "second job saw no warmth from the first"
        );
        assert!(
            second.stats.cache.misses < first.stats.cache.misses,
            "warm job recomputed as much as cold: {} vs {}",
            second.stats.cache.misses,
            first.stats.cache.misses
        );
        assert_eq!(first.accelerator, second.accelerator);
        assert_eq!(first.hw_history, second.hw_history);
        assert_eq!(first.total.latency_cycles, second.total.latency_cycles);
    }

    fn event_stream(opts: CoDesignOptions) -> (Vec<RunEvent>, hasco::Solution) {
        let engine = Engine::new(EngineConfig::default().with_job_slots(1));
        let handle = engine
            .submit(CoDesignRequest::new(mixed_input(2), opts).with_label("probe"))
            .unwrap();
        let events: Vec<RunEvent> = handle.events().collect();
        (events, handle.wait().unwrap())
    }

    #[test]
    fn event_streams_are_well_formed_and_thread_count_independent() {
        let opts = |threads: usize| {
            CoDesignOptions::quick(29)
                .with_threads(threads)
                .with_refinement(accel_model::BackendKind::TraceSim, 2)
        };
        let (serial_events, serial) = event_stream(opts(1));
        let (parallel_events, parallel) = event_stream(opts(4));

        // Shape: Started first, Solved last, partitions for both
        // workloads, DSE batches and staged refinements in between.
        assert!(matches!(serial_events[0], RunEvent::Started { .. }));
        assert!(matches!(
            serial_events.last().unwrap(),
            RunEvent::Solved { .. }
        ));
        let count = |pred: fn(&RunEvent) -> bool| serial_events.iter().filter(|e| pred(e)).count();
        assert_eq!(count(|e| matches!(e, RunEvent::Partitioned { .. })), 2);
        assert!(count(|e| matches!(e, RunEvent::BatchEvaluated { .. })) > 0);
        assert!(count(|e| matches!(e, RunEvent::Refined { .. })) > 0);
        assert!(count(|e| matches!(e, RunEvent::SoftwareOptimized { .. })) >= 2);
        assert_eq!(count(|e| matches!(e, RunEvent::Solved { .. })), 1);

        // Determinism: the whole typed stream is bit-identical across
        // thread counts, like the solutions themselves.
        assert_eq!(serial_events, parallel_events);
        assert_eq!(serial.hw_history, parallel.hw_history);
    }

    #[test]
    fn restarted_engine_is_bit_identical_to_a_long_lived_one() {
        // The warm-restart contract: an engine restored from persisted
        // images (memo cache + surrogate store) prices exactly like a
        // process that never exited — same solutions, same RunStats, same
        // event streams, bit for bit.
        let mut cache = std::env::temp_dir();
        cache.push(format!("hasco-restart-cache-{}.bin", std::process::id()));
        let mut store = std::env::temp_dir();
        store.push(format!("hasco-restart-store-{}.bin", std::process::id()));
        std::fs::remove_file(&cache).ok();
        std::fs::remove_file(&store).ok();

        // A surrogate-screened, staged job trains warm state worth
        // persisting; the second job consumes it.
        let opts = |seed: u64| {
            let mut o = CoDesignOptions::quick(seed)
                .with_backend(accel_model::BackendKind::Surrogate)
                .with_adaptive_refinement(accel_model::BackendKind::TraceSim, 2);
            o.hw_trials = 6;
            o
        };
        let first = || CoDesignRequest::new(mixed_input(2), opts(51)).with_label("first");
        let second = || CoDesignRequest::new(mixed_input(2), opts(52)).with_label("second");
        let run_second = |engine: &Engine| {
            let handle = engine.submit(second()).unwrap();
            let solution = handle.wait().unwrap();
            let events: Vec<RunEvent> = handle.events().collect();
            (solution, events)
        };

        // Reference: one long-lived engine, never restarted.
        let (ref_solution, ref_events) = {
            let engine = Engine::new(EngineConfig::default().with_job_slots(1));
            let warmup = engine.submit(first()).unwrap().wait().unwrap();
            assert!(warmup.stats.surrogate_samples > 0);
            run_second(&engine)
        };

        // Restarted: the first job runs on an engine that persists, then
        // a fresh engine restores from the images and runs the second.
        let config = || {
            EngineConfig::default()
                .with_job_slots(1)
                .with_cache_path(&cache)
                .with_surrogate_store(&store)
        };
        {
            let engine = Engine::new(config());
            engine.submit(first()).unwrap().wait().unwrap();
            engine.persist().unwrap();
        }
        let restored = Engine::new(config());
        assert!(restored.restored_surrogate_generation() > 0);
        let (warm_solution, warm_events) = run_second(&restored);

        assert_eq!(ref_solution.accelerator, warm_solution.accelerator);
        assert_eq!(ref_solution.hw_history, warm_solution.hw_history);
        assert_eq!(
            ref_solution.total.latency_cycles.to_bits(),
            warm_solution.total.latency_cycles.to_bits()
        );
        for (a, b) in ref_solution
            .per_workload
            .iter()
            .zip(&warm_solution.per_workload)
        {
            assert_eq!(a.program, b.program);
            assert_eq!(
                a.metrics.latency_cycles.to_bits(),
                b.metrics.latency_cycles.to_bits()
            );
        }
        // Bit-identical statistics: the restored warm state must be
        // indistinguishable from the resident one (same warm entries,
        // same hit/miss pattern, same surrogate trajectory).
        assert_eq!(ref_solution.stats, warm_solution.stats);
        assert_eq!(ref_events, warm_events, "event stream diverged");

        // Corrupting both images degrades to a clean cold start — never
        // an error — identical to a job on a fresh engine.
        for path in [&cache, &store] {
            let mut bytes = std::fs::read(path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(path, &bytes).unwrap();
        }
        let corrupt = Engine::new(config());
        assert_eq!(corrupt.restored_surrogate_generation(), 0);
        let (cold_solution, cold_events) = run_second(&corrupt);
        let fresh = Engine::new(EngineConfig::default().with_job_slots(1));
        let (fresh_solution, fresh_events) = run_second(&fresh);
        assert_eq!(cold_solution.hw_history, fresh_solution.hw_history);
        assert_eq!(cold_solution.stats, fresh_solution.stats);
        assert_eq!(cold_events, fresh_events);

        std::fs::remove_file(&cache).ok();
        std::fs::remove_file(&store).ok();
    }

    #[test]
    fn telemetry_never_changes_results() {
        // The observability contract: telemetry is a wall-clock side
        // channel, so enabling it must not move a single result bit —
        // same solutions, same RunStats, same event streams — at any
        // thread count, with or without stealing, and across a restart.
        use runtime::{Telemetry, TelemetrySnapshot};

        let opts = |seed: u64, threads: usize, stealing: bool| {
            CoDesignOptions::quick(seed)
                .with_backend(accel_model::BackendKind::Surrogate)
                .with_adaptive_refinement(accel_model::BackendKind::TraceSim, 2)
                .with_threads(threads)
                .with_work_stealing(stealing)
        };
        let run = |config: EngineConfig, opts: CoDesignOptions| {
            let engine = Engine::new(config);
            let handle = engine
                .submit(CoDesignRequest::new(mixed_input(2), opts).with_label("probe"))
                .unwrap();
            let events: Vec<RunEvent> = handle.events().collect();
            let solution = handle.wait().unwrap();
            let snapshot = engine.metrics();
            (solution, events, snapshot)
        };
        // Steal counts are genuinely timing-dependent (that is why they
        // live in telemetry); every other stat field must be identical.
        let stats_modulo_steals = |solution: &hasco::Solution| {
            let mut stats = solution.stats.clone();
            stats.steals = 0;
            stats
        };
        let assert_snapshot_nontrivial = |snapshot: &Option<TelemetrySnapshot>| {
            let snapshot = snapshot.as_ref().expect("metrics-on engine snapshots");
            assert!(
                snapshot.spans.iter().any(|s| s.path == "job"),
                "no job span recorded"
            );
            assert!(
                snapshot.spans.iter().any(|s| s.path == "job/hw_dse/screen"),
                "no screen span recorded"
            );
            assert!(
                snapshot.tiers.iter().any(|t| t.evals > 0),
                "no tier evaluations recorded"
            );
            assert!(snapshot.gp.fits > 0, "surrogate run recorded no GP fits");
            assert!(snapshot.pool.batches > 0, "no pool batches recorded");
            assert!(
                snapshot.caches.iter().any(|c| c.total().misses > 0),
                "no cache traffic recorded"
            );
        };

        for (threads, stealing) in [(1, false), (2, true), (8, true), (8, false)] {
            let (on, on_events, on_snapshot) = run(
                EngineConfig::default()
                    .with_job_slots(1)
                    .with_metrics(Telemetry::enabled()),
                opts(37, threads, stealing),
            );
            let (off, off_events, off_snapshot) = run(
                EngineConfig::default().with_job_slots(1),
                opts(37, threads, stealing),
            );
            assert!(off_snapshot.is_none(), "metrics-off engine has no snapshot");
            assert_snapshot_nontrivial(&on_snapshot);
            assert_eq!(
                on.accelerator, off.accelerator,
                "threads={threads} stealing={stealing}"
            );
            assert_eq!(
                on.hw_history, off.hw_history,
                "threads={threads} stealing={stealing}"
            );
            assert_eq!(
                on.total.latency_cycles.to_bits(),
                off.total.latency_cycles.to_bits()
            );
            for (a, b) in on.per_workload.iter().zip(&off.per_workload) {
                assert_eq!(a.program, b.program);
                assert_eq!(
                    a.metrics.latency_cycles.to_bits(),
                    b.metrics.latency_cycles.to_bits()
                );
            }
            assert_eq!(
                stats_modulo_steals(&on),
                stats_modulo_steals(&off),
                "threads={threads} stealing={stealing}"
            );
            assert_eq!(
                on_events, off_events,
                "event stream diverged at threads={threads} stealing={stealing}"
            );
        }

        // Restart leg: persisting and restoring with metrics on restores
        // the identical warm state a metrics-off engine would.
        let mut cache = std::env::temp_dir();
        cache.push(format!("hasco-telemetry-cache-{}.bin", std::process::id()));
        let restart = |metrics: bool| {
            std::fs::remove_file(&cache).ok();
            let config = || {
                let c = EngineConfig::default()
                    .with_job_slots(1)
                    .with_cache_path(&cache);
                if metrics {
                    c.with_metrics(Telemetry::enabled())
                } else {
                    c
                }
            };
            {
                let engine = Engine::new(config());
                engine
                    .submit(CoDesignRequest::new(mixed_input(2), opts(61, 2, true)))
                    .unwrap()
                    .wait()
                    .unwrap();
                engine.persist().unwrap();
            }
            run(config(), opts(62, 2, true))
        };
        let (warm_on, warm_on_events, warm_on_snapshot) = restart(true);
        let (warm_off, warm_off_events, _) = restart(false);
        std::fs::remove_file(&cache).ok();
        assert!(warm_on.stats.warm_cache_entries > 0, "restart was not warm");
        assert_snapshot_nontrivial(&warm_on_snapshot);
        assert_eq!(warm_on.accelerator, warm_off.accelerator);
        assert_eq!(warm_on.hw_history, warm_off.hw_history);
        assert_eq!(
            stats_modulo_steals(&warm_on),
            stats_modulo_steals(&warm_off)
        );
        assert_eq!(warm_on_events, warm_off_events);
    }

    #[test]
    fn event_streams_are_identical_under_concurrent_interleaving() {
        let opts = || CoDesignOptions::quick(31);
        let (solo_events, _) = event_stream(opts());

        let engine = Engine::new(EngineConfig::default().with_job_slots(3));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                engine
                    .submit(CoDesignRequest::new(mixed_input(2), opts()).with_label("probe"))
                    .unwrap()
            })
            .collect();
        for handle in handles {
            let events: Vec<RunEvent> = handle.events().collect();
            handle.wait().unwrap();
            assert_eq!(events, solo_events, "stream diverged under concurrency");
        }
    }
}

mod network_serving {
    //! The network extension of the invariant: *remote worker dispatch
    //! never changes any job's results*. A campaign served over TCP with
    //! expensive batches sharded across worker processes — any number of
    //! them, including one dying mid-batch — is bit-identical to the
    //! same requests run in-process: solutions, `RunStats`, and event
    //! streams.

    use super::mixed_input;
    use hasco::codesign::CoDesignOptions;
    use hasco::engine::{CoDesignRequest, Engine, EngineConfig};
    use hasco::event::{CampaignEvent, RunEvent};
    use hasco_net::{Client, Server, ServerOptions, WorkerHandle};

    /// A staged run whose refine tier (TraceSim) is remote-eligible, so
    /// served legs actually ship batches to workers.
    fn staged_request(seed: u64) -> CoDesignRequest {
        CoDesignRequest::new(
            mixed_input(2),
            CoDesignOptions::quick(seed).with_refinement(accel_model::BackendKind::TraceSim, 2),
        )
        .with_label("net-probe")
    }

    fn reference(seed: u64) -> (hasco::Solution, Vec<RunEvent>) {
        let engine = Engine::new(EngineConfig::default().with_job_slots(1));
        let handle = engine.submit(staged_request(seed)).unwrap();
        let events: Vec<RunEvent> = handle.events().collect();
        (handle.wait().unwrap(), events)
    }

    /// Runs the same request through a fresh server with the given
    /// worker fleet; returns (solution, events, batches the fleet
    /// actually served).
    fn served(seed: u64, workers: usize, flaky: bool) -> (hasco::Solution, Vec<RunEvent>, u64) {
        let opts = ServerOptions {
            min_workers: workers + usize::from(flaky),
            ..ServerOptions::default()
        };
        let server = Server::bind(
            "127.0.0.1:0",
            EngineConfig::default().with_job_slots(1),
            opts,
        )
        .expect("bind loopback");
        let addr = server.addr().to_string();
        let mut fleet = Vec::new();
        if flaky {
            // Reads its first BatchRequest, then drops the connection
            // without replying: a deterministic mid-batch death.
            fleet.push(WorkerHandle::spawn_flaky(&addr, 0));
        }
        for _ in 0..workers {
            fleet.push(WorkerHandle::spawn(&addr));
        }

        let client = Client::connect(&addr).expect("hello handshake");
        let job = client.submit(staged_request(seed)).expect("remote submit");
        let events: Vec<RunEvent> = job.events().collect();
        let solution = job.wait().expect("remote job solves");
        server.shutdown();
        let batches = fleet
            .into_iter()
            .map(|w| w.join().unwrap_or(0))
            .sum::<u64>();
        (solution, events, batches)
    }

    fn assert_identical(
        reference: &(hasco::Solution, Vec<RunEvent>),
        solution: &hasco::Solution,
        events: &[RunEvent],
        leg: &str,
    ) {
        let (expected, expected_events) = reference;
        assert_eq!(expected.accelerator, solution.accelerator, "{leg}");
        assert_eq!(expected.hw_history, solution.hw_history, "{leg}");
        assert_eq!(
            expected.total.latency_cycles.to_bits(),
            solution.total.latency_cycles.to_bits(),
            "{leg}"
        );
        for (a, b) in expected.per_workload.iter().zip(&solution.per_workload) {
            assert_eq!(a.program, b.program, "{leg}");
            assert_eq!(
                a.metrics.latency_cycles.to_bits(),
                b.metrics.latency_cycles.to_bits(),
                "{leg}"
            );
        }
        // Bit-identical statistics: same eval counts, same memo hit/miss
        // pattern — dispatch routing is invisible to RunStats.
        assert_eq!(&expected.stats, &solution.stats, "{leg}");
        assert_eq!(expected_events, &events, "event stream diverged: {leg}");
    }

    #[test]
    fn remote_dispatch_is_bit_identical_at_any_worker_count() {
        let expected = reference(23);
        assert!(expected.0.stats.refine_explorations > 0);

        for workers in [0, 1, 3] {
            let (solution, events, batches) = served(23, workers, false);
            assert_identical(&expected, &solution, &events, &format!("{workers} workers"));
            if workers > 0 {
                assert!(
                    batches > 0,
                    "{workers}-worker leg never dispatched remotely"
                );
            }
        }
    }

    #[test]
    fn a_worker_dying_mid_batch_changes_nothing() {
        let expected = reference(23);
        // One healthy worker plus one that dies without replying to its
        // first batch: the dead worker's shard re-dispatches to the
        // survivor (or in-process), bit-identically.
        let (solution, events, batches) = served(23, 1, true);
        assert_identical(&expected, &solution, &events, "flaky leg");
        assert!(batches > 0, "survivor served nothing");
    }

    #[test]
    fn served_campaigns_match_in_process_campaigns_bit_for_bit() {
        // A matrix with a deduplicated scenario, served vs in-process.
        let matrix = || {
            vec![
                staged_request(23),
                CoDesignRequest::new(
                    mixed_input(1),
                    CoDesignOptions::quick(7)
                        .with_refinement(accel_model::BackendKind::TraceSim, 2),
                )
                .with_label("small"),
                staged_request(23).with_label("dup-of-net-probe"),
            ]
        };

        let engine = Engine::new(EngineConfig::default().with_job_slots(1));
        let (expected, expected_events) = engine.campaign_events(matrix()).unwrap();
        let expected_events: Vec<CampaignEvent> = expected_events.collect();

        let server = Server::bind(
            "127.0.0.1:0",
            EngineConfig::default().with_job_slots(1),
            ServerOptions {
                min_workers: 2,
                ..ServerOptions::default()
            },
        )
        .expect("bind loopback");
        let addr = server.addr().to_string();
        let fleet = [WorkerHandle::spawn(&addr), WorkerHandle::spawn(&addr)];
        let client = Client::connect(&addr).expect("hello handshake");
        let (outcomes, events) = client.campaign_events(matrix()).expect("remote campaign");
        let events: Vec<CampaignEvent> = events.collect();
        server.shutdown();
        let batches: u64 = fleet.into_iter().map(|w| w.join().unwrap_or(0)).sum();
        assert!(batches > 0, "campaign never dispatched remotely");

        assert_eq!(expected_events, events, "campaign stream diverged");
        assert_eq!(expected.len(), outcomes.len());
        for (a, b) in expected.iter().zip(&outcomes) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.shared_with, b.shared_with);
            assert_eq!(a.solution.accelerator, b.solution.accelerator);
            assert_eq!(a.solution.hw_history, b.solution.hw_history);
            assert_eq!(a.solution.stats, b.solution.stats);
            assert_eq!(
                a.solution.total.latency_cycles.to_bits(),
                b.solution.total.latency_cycles.to_bits()
            );
        }
    }
}
