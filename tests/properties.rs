//! Property-based tests over the reproduction's core invariants.

use proptest::prelude::*;

use accel_model::arch::AcceleratorConfig;
use accel_model::CostModel;
use dse::gp::{GaussianProcess, IncrementalGp};
use dse::hypervolume::hypervolume;
use dse::pareto::{dominates, pareto_indices, ParetoArchive};
use sw_opt::lowering;
use sw_opt::schedule::{Revision, ScheduleContext, NUM_REVISIONS};
use tensor_ir::intrinsics::{gemm_intrinsic, gemv_intrinsic, IntrinsicKind};
use tensor_ir::matching::{find_tensorize_choices, MatchOptions};
use tensor_ir::suites;

fn objective_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1f64..10.0, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- Pareto / hypervolume invariants -----------------

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(a in objective_vec(), b in objective_vec()) {
        prop_assert!(!dominates(&a, &a));
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
    }

    #[test]
    fn pareto_front_members_are_mutually_non_dominated(
        objs in prop::collection::vec(objective_vec(), 1..20)
    ) {
        let refs: Vec<&[f64]> = objs.iter().map(|v| v.as_slice()).collect();
        let front = pareto_indices(&refs);
        prop_assert!(!front.is_empty());
        for &i in &front {
            for &j in &front {
                if i != j {
                    prop_assert!(!dominates(&objs[j], &objs[i]));
                }
            }
        }
        // Every non-front point is dominated by (or duplicates) someone.
        for k in 0..objs.len() {
            if !front.contains(&k) {
                let covered = objs.iter().enumerate().any(|(j, o)| {
                    j != k && (dominates(o, &objs[k]) || *o == objs[k])
                });
                prop_assert!(covered, "point {} uncovered", k);
            }
        }
    }

    #[test]
    fn hypervolume_monotone_under_additions(
        objs in prop::collection::vec(objective_vec(), 1..12),
        extra in objective_vec()
    ) {
        let reference = vec![11.0, 11.0, 11.0];
        let base = hypervolume(&objs, &reference);
        let mut more = objs.clone();
        more.push(extra);
        let bigger = hypervolume(&more, &reference);
        prop_assert!(bigger >= base - 1e-9, "hv shrank: {base} -> {bigger}");
    }

    #[test]
    fn hypervolume_bounded_by_reference_box(
        objs in prop::collection::vec(objective_vec(), 1..12)
    ) {
        let reference = vec![10.0, 10.0, 10.0];
        let hv = hypervolume(&objs, &reference);
        // Best possible point is (0.1, 0.1, 0.1) -> box 9.9^3.
        prop_assert!(hv <= 9.9f64.powi(3) + 1e-6);
        prop_assert!(hv >= 0.0);
    }

    #[test]
    fn archive_never_holds_dominated_pairs(
        objs in prop::collection::vec(objective_vec(), 1..24)
    ) {
        let mut archive: ParetoArchive<usize> = ParetoArchive::new();
        for (i, o) in objs.iter().enumerate() {
            archive.insert(i, o.clone());
        }
        let entries = archive.entries();
        for (_, a) in entries {
            for (_, b) in entries {
                prop_assert!(!dominates(a, b) || a == b);
            }
        }
    }

    // ---------------- surrogate incremental-fit invariants -------------

    #[test]
    fn incremental_gp_appends_match_from_scratch_bit_for_bit(
        rows in prop::collection::vec(
            (prop::collection::vec(0.0f64..1.0, 3), -2.0f64..2.0),
            1..20
        )
    ) {
        // The incremental trainer extends its per-length-scale Cholesky
        // factors one row at a time; from-scratch refits the grown kernel
        // matrix. The two must agree to the bit at every prefix — the
        // selected length scale and every posterior — or the surrogate's
        // speed path would silently change co-design results.
        let mut inc = IncrementalGp::new();
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let probes = [[0.2f64, 0.5, 0.8], [0.9, 0.1, 0.4], [0.0, 1.0, 0.5]];
        for (x, y) in rows {
            inc.push(x.clone(), y);
            xs.push(x);
            ys.push(y);
            let scratch = GaussianProcess::fit(&xs, &ys).unwrap();
            inc.refresh().unwrap();
            let grown = inc.model().unwrap();
            prop_assert_eq!(
                grown.length_scale().to_bits(),
                scratch.length_scale().to_bits()
            );
            for p in &probes {
                let a = grown.predict(p);
                let b = scratch.predict(p);
                prop_assert_eq!(a.mean.to_bits(), b.mean.to_bits());
                prop_assert_eq!(a.std.to_bits(), b.std.to_bits());
            }
        }
    }

    // ---------------- matcher soundness -------------------------------

    #[test]
    fn matcher_choices_respect_kinds_and_bijection(
        k in 8u64..128, c in 8u64..128, x in 7u64..56, r in 1u64..6
    ) {
        let wl = suites::conv2d_workload("c", k, c, x, x, r, r);
        for intr in [gemm_intrinsic(16, 16, 16), gemv_intrinsic(16, 16)] {
            for choice in find_tensorize_choices(&wl.comp, &intr.comp, &MatchOptions::default()) {
                // Var-level bijection: distinct on both sides.
                let mut qs: Vec<_> = choice.var_map.iter().map(|&(q, _)| q).collect();
                let mut cs: Vec<_> = choice.var_map.iter().map(|&(_, c)| c).collect();
                qs.sort(); qs.dedup();
                cs.sort(); cs.dedup();
                prop_assert_eq!(qs.len(), choice.var_map.len());
                prop_assert_eq!(cs.len(), choice.var_map.len());
                // Kind preservation.
                for &(q, cc) in &choice.var_map {
                    prop_assert_eq!(
                        intr.comp.index(q).kind,
                        wl.comp.index(cc).kind
                    );
                }
            }
        }
    }

    // ---------------- lowering invariants ------------------------------

    #[test]
    fn lowering_respects_capacity_and_padding(seed in 0u64..500) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .scratchpad_kb(128)
            .build()
            .unwrap();
        let wl = suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3);
        let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let sched = ctx.random_schedule(&mut rng);
        if let Ok(l) = lowering::lower(&sched, &ctx, &cfg) {
            prop_assert!(l.tile_footprint_bytes <= cfg.scratchpad_bytes);
            prop_assert!(l.plan.macs_padded >= l.plan.macs_useful);
            prop_assert_eq!(l.plan.macs_useful, wl.comp.iteration_points());
            prop_assert!(l.plan.dram_bytes() > 0);
            // DRAM traffic can never undercut compulsory traffic for the
            // output tensor (each output element written at least once).
            let out_bytes = wl.comp.tensor_elements(&wl.comp.output) * cfg.dtype_bytes;
            let writes: u64 = l.plan.dram_writes.iter().map(|t| t.bytes).sum();
            prop_assert!(writes >= out_bytes);
            // Metrics are finite and positive.
            let m = CostModel::default().evaluate(&cfg, &l.plan);
            prop_assert!(m.latency_cycles.is_finite() && m.latency_cycles > 0.0);
            prop_assert!(m.power_mw.is_finite() && m.power_mw > 0.0);
        }
    }

    #[test]
    fn revisions_preserve_schedule_validity(seed in 0u64..300, action in 0usize..NUM_REVISIONS) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm).build().unwrap();
        let wl = suites::gemm_workload("g", 192, 160, 224);
        let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let sched = ctx.random_schedule(&mut rng);
        prop_assert!(sched.validate(&ctx).is_ok());
        if let Some(revised) = Revision::from_action(action).apply(&sched, &ctx, &mut rng) {
            prop_assert!(revised.validate(&ctx).is_ok(), "action {action} broke validity");
        }
    }

    #[test]
    fn cost_model_monotone_in_padding(extra in 1u64..1_000_000) {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm).build().unwrap();
        let model = CostModel::default();
        let base = accel_model::ExecutionPlan::compute_only(1_000_000, 1_000_000, 100);
        let mut padded = base.clone();
        padded.macs_padded += extra;
        prop_assert!(
            model.latency_cycles(&cfg, &padded) >= model.latency_cycles(&cfg, &base)
        );
    }
}
