//! Lifecycle properties of the persisted evaluation cache: round-trips
//! survive arbitrary byte-level corruption without ever inventing data,
//! merged saves accumulate newest-wins across runs, interrupted saves
//! (simulated partial writes) never destroy a loadable file, and
//! concurrent savers interleave into a loadable, merged image.

use proptest::prelude::*;

use runtime::MemoCache;

fn encode(k: &u64, v: &u64, out: &mut Vec<u8>) {
    out.extend_from_slice(&k.to_le_bytes());
    out.extend_from_slice(&v.to_le_bytes());
}

fn decode(bytes: &[u8]) -> Option<(u64, u64)> {
    if bytes.len() != 16 {
        return None;
    }
    Some((
        u64::from_le_bytes(bytes[..8].try_into().ok()?),
        u64::from_le_bytes(bytes[8..].try_into().ok()?),
    ))
}

/// A unique temp path per (test, case) so proptest cases never collide.
fn temp_path(tag: &str, case: u64) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hasco-cache-lifecycle-{tag}-{}-{case}.bin",
        std::process::id()
    ));
    p
}

/// What a byte-level adversary does to the image between save and load.
#[derive(Debug, Clone)]
enum Corruption {
    None,
    Truncate(usize),
    FlipByte(usize),
    AppendGarbage(Vec<u8>),
}

fn corruption() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        Just(Corruption::None),
        (0usize..4096).prop_map(Corruption::Truncate),
        (0usize..4096).prop_map(Corruption::FlipByte),
        prop::collection::vec(any::<u8>(), 1..64).prop_map(Corruption::AppendGarbage),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Saving then loading under arbitrary corruption either recovers
    /// exactly the saved entries (image untouched) or degrades to a clean
    /// cold start — it never panics and never yields a wrong value.
    #[test]
    fn roundtrip_survives_byte_level_corruption(
        entries in prop::collection::btree_map(any::<u64>(), any::<u64>(), 0..40),
        corruption in corruption(),
        case in any::<u64>(),
    ) {
        let path = temp_path("roundtrip", case);
        let cache: MemoCache<u64, u64> = MemoCache::new(256);
        for (&k, &v) in &entries {
            cache.insert(k, v);
        }
        let saved = cache.save_to_file(&path, encode).unwrap();
        prop_assert_eq!(saved as usize, entries.len());

        let mut image = std::fs::read(&path).unwrap();
        let intact = match &corruption {
            Corruption::None => true,
            Corruption::Truncate(at) => {
                let orig = image.len();
                let at = *at % (orig + 1);
                image.truncate(at);
                at == orig
            }
            Corruption::FlipByte(at) => {
                if image.is_empty() {
                    true
                } else {
                    let at = *at % image.len();
                    image[at] ^= 0x5a;
                    false
                }
            }
            Corruption::AppendGarbage(extra) => {
                image.extend_from_slice(extra);
                false
            }
        };
        std::fs::write(&path, &image).unwrap();

        let warm: MemoCache<u64, u64> = MemoCache::new(256);
        let loaded = warm.load_from_file(&path, decode).unwrap();
        if intact {
            prop_assert_eq!(loaded as usize, entries.len());
        } else {
            // Anything recovered must be byte-exact; a detected anomaly
            // must leave the cache empty.
            prop_assert!(loaded == saved || loaded == 0, "loaded {loaded} of {saved}");
        }
        for (&k, &v) in &entries {
            let got = warm.get(&k);
            prop_assert!(got.is_none() || got == Some(v), "key {k}: wrong value");
        }
        std::fs::remove_file(&path).ok();
    }

    /// Two runs saving through the same file accumulate: the second run's
    /// merged save preserves the first run's distinct keys and wins on
    /// shared ones, whatever the overlap.
    #[test]
    fn merged_saves_accumulate_newest_wins(
        first in prop::collection::btree_map(0u64..64, any::<u64>(), 1..24),
        second in prop::collection::btree_map(0u64..64, any::<u64>(), 1..24),
        case in any::<u64>(),
    ) {
        let path = temp_path("merge", case);
        std::fs::remove_file(&path).ok();
        let a: MemoCache<u64, u64> = MemoCache::new(256);
        for (&k, &v) in &first {
            a.insert(k, v);
        }
        a.save_merged_to_file(&path, encode, decode).unwrap();
        let b: MemoCache<u64, u64> = MemoCache::new(256);
        for (&k, &v) in &second {
            b.insert(k, v);
        }
        let written = b.save_merged_to_file(&path, encode, decode).unwrap();
        let union: std::collections::BTreeSet<u64> =
            first.keys().chain(second.keys()).copied().collect();
        prop_assert_eq!(written as usize, union.len());

        let warm: MemoCache<u64, u64> = MemoCache::new(256);
        warm.load_from_file(&path, decode).unwrap();
        for k in union {
            let expect = second.get(&k).or_else(|| first.get(&k)).copied();
            prop_assert_eq!(warm.get(&k), expect, "key {}", k);
        }
        std::fs::remove_file(&path).ok();
    }

    /// An interrupted save — simulated as a partial prefix of the next
    /// image landing at the path, the worst a non-atomic writer could do
    /// — still leaves every later reader and merger functional: loads are
    /// clean cold starts, and a merged save on top produces a loadable
    /// file with the fresh entries.
    #[test]
    fn interrupted_saves_never_poison_the_file(
        entries in prop::collection::btree_map(any::<u64>(), any::<u64>(), 1..24),
        cut in 0usize..2048,
        case in any::<u64>(),
    ) {
        let path = temp_path("interrupt", case);
        let writer: MemoCache<u64, u64> = MemoCache::new(256);
        for (&k, &v) in &entries {
            writer.insert(k, v);
        }
        writer.save_to_file(&path, encode).unwrap();
        let full = std::fs::read(&path).unwrap();
        let cut = cut % full.len();
        std::fs::write(&path, &full[..cut]).unwrap();

        let survivor: MemoCache<u64, u64> = MemoCache::new(256);
        survivor.insert(u64::MAX, 1);
        let written = survivor.save_merged_to_file(&path, encode, decode).unwrap();
        prop_assert!(written >= 1);
        let warm: MemoCache<u64, u64> = MemoCache::new(256);
        prop_assert_eq!(warm.load_from_file(&path, decode).unwrap(), written);
        prop_assert_eq!(warm.get(&u64::MAX), Some(1));
        std::fs::remove_file(&path).ok();
    }
}

/// Two caches saving concurrently into one file interleave into a
/// loadable, merged image: no torn writes, no stale temp files, and the
/// final file contains at least the last writer's entries with every
/// surviving value attributable to one of the writers.
#[test]
fn concurrent_merged_saves_leave_a_loadable_file() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("hasco-cache-concurrent-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("shared.bin");
    std::fs::remove_file(&path).ok();

    const WRITERS: u64 = 4;
    const ROUNDS: usize = 12;
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let path = path.clone();
            s.spawn(move || {
                let cache: MemoCache<u64, u64> = MemoCache::new(512);
                for i in 0..16u64 {
                    // Writer-distinct keys plus a contended shared range;
                    // values encode the writer so merges stay checkable.
                    cache.insert((w + 1) * 1000 + i, w);
                    cache.insert(i, w);
                }
                for _ in 0..ROUNDS {
                    cache.save_merged_to_file(&path, encode, decode).unwrap();
                }
            });
        }
    });

    // The final image parses, and every entry traces back to a writer.
    let warm: MemoCache<u64, u64> = MemoCache::new(4096);
    let loaded = warm.load_from_file(&path, decode).unwrap();
    assert!(
        loaded >= 32,
        "final image lost even the last writer: {loaded}"
    );
    for w in 0..WRITERS {
        for i in 0..16u64 {
            if let Some(v) = warm.get(&((w + 1) * 1000 + i)) {
                assert_eq!(v, w, "writer-distinct key {} corrupted", (w + 1) * 1000 + i);
            }
        }
    }
    for i in 0..16u64 {
        if let Some(v) = warm.get(&i) {
            assert!(v < WRITERS, "shared key {i} has impossible value {v}");
        }
    }
    // No temp-file litter even under contention.
    let stray: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n != "shared.bin")
        .collect();
    assert!(stray.is_empty(), "temp files leaked: {stray:?}");
    std::fs::remove_dir_all(&dir).ok();
}
