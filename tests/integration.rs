//! Cross-crate integration tests: the full pipeline from tensor IR through
//! matching, scheduling, lowering, instruction generation, simulation, and
//! co-design.

use accel_model::arch::AcceleratorConfig;
use accel_model::sim::TraceSimulator;
use hasco::codesign::{CoDesignOptions, CoDesigner};
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use sw_opt::explorer::{ExplorerOptions, SoftwareExplorer};
use sw_opt::interface;
use sw_opt::schedule::ScheduleContext;
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::suites;
use tensor_ir::workload::TensorApp;

fn gemmcore() -> AcceleratorConfig {
    AcceleratorConfig::builder(IntrinsicKind::Gemm)
        .pe_array(16, 16)
        .scratchpad_kb(256)
        .build()
        .unwrap()
}

#[test]
fn schedule_lowers_generates_and_simulates_consistently() {
    // IR -> matcher -> explorer -> lowering -> ISA -> simulator, asserting
    // the analytical and simulated latencies stay within 2.5x.
    let cfg = gemmcore();
    let wl = suites::gemm_workload("g", 256, 256, 256);
    let opts = ExplorerOptions {
        pool: 8,
        rounds: 8,
        top_k: 3,
        ..Default::default()
    };
    let best = SoftwareExplorer::new(3).optimize(&wl, &cfg, &opts).unwrap();
    let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
    let iface = interface::generate_program(&best.schedule, &ctx, &cfg, 50_000).unwrap();
    assert!(!iface.truncated);
    let sim = TraceSimulator::default();
    let traced = sim
        .run(&cfg, &iface.program, iface.lowered.plan.double_buffered)
        .cycles;
    let ratio = traced / best.metrics.latency_cycles;
    assert!((0.4..2.5).contains(&ratio), "sim/model ratio = {ratio}");
    // The instruction stream must carry exactly the plan's work.
    assert_eq!(
        iface.program.total_calls(),
        iface.lowered.plan.intrinsic_calls
    );
    assert_eq!(iface.program.total_macs(), iface.lowered.plan.macs_padded);
}

#[test]
fn codesign_full_flow_on_mixed_app() {
    let app = TensorApp::new(
        "mixed",
        vec![
            suites::gemm_workload("g", 256, 256, 256),
            suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3),
        ],
    );
    let input = InputDescription {
        app,
        method: GenerationMethod::Gemmini,
        constraints: Constraints::default(),
    };
    let solution = CoDesigner::new(CoDesignOptions::quick(5))
        .run(&input)
        .unwrap();
    assert_eq!(solution.per_workload.len(), 2);
    assert!(solution.total.latency_cycles > 0.0);
    // Per-workload latencies must sum to the app latency.
    let sum: f64 = solution
        .per_workload
        .iter()
        .map(|w| w.metrics.latency_cycles)
        .sum();
    assert!((sum - solution.total.latency_cycles).abs() / sum < 1e-9);
    // Both generated programs reference the GEMM interface.
    for w in &solution.per_workload {
        assert!(w.program.contains("gemm_intrin"), "{}", w.program);
    }
}

#[test]
fn hasco_software_beats_naive_schedule_on_gemmcore() {
    // The explorer must beat the worst random valid schedule by a clear
    // margin (software optimization matters, §II-C).
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let cfg = gemmcore();
    let wl = suites::conv2d_workload("c", 128, 128, 28, 28, 3, 3);
    let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
    let model = accel_model::AnalyticBackend::default();
    let mut rng = SmallRng::seed_from_u64(1);
    let mut worst: f64 = 0.0;
    for _ in 0..60 {
        let s = ctx.random_schedule(&mut rng);
        if let Ok(m) = sw_opt::lowering::evaluate(&s, &ctx, &cfg, &model) {
            worst = worst.max(m.latency_cycles);
        }
    }
    let opts = ExplorerOptions {
        pool: 10,
        rounds: 12,
        top_k: 3,
        ..Default::default()
    };
    let best = SoftwareExplorer::new(2).optimize(&wl, &cfg, &opts).unwrap();
    assert!(
        best.metrics.latency_cycles * 2.0 < worst,
        "best {} vs worst {}",
        best.metrics.latency_cycles,
        worst
    );
}

#[test]
fn library_autotvm_hasco_ordering_on_conv() {
    // §VII-D ordering for a conv layer on GEMMCore:
    // library (im2col) >= autotvm >= hasco in latency (within tolerance).
    let cfg = gemmcore();
    let wl = suites::conv2d_workload("c", 128, 128, 28, 28, 3, 3);
    let lib = baselines::GemmLibrary::new().run(&wl, &cfg).unwrap();
    let tvm = baselines::AutoTvm::new(9).best_metrics(&wl, &cfg).unwrap();
    let opts = ExplorerOptions {
        pool: 12,
        rounds: 14,
        top_k: 3,
        ..Default::default()
    };
    let hasco = SoftwareExplorer::new(9)
        .optimize(&wl, &cfg, &opts)
        .unwrap()
        .metrics;
    // Per-layer lib-vs-AutoTVM ordering varies (the aggregate 3.17X/1.21X
    // shape is asserted in the fig11 harness); HASCO must top both here.
    assert!(
        hasco.latency_cycles <= tvm.latency_cycles * 1.05,
        "hasco {} should match/beat autotvm {}",
        hasco.latency_cycles,
        tvm.latency_cycles
    );
    assert!(
        hasco.latency_cycles * 1.5 < lib.total.latency_cycles,
        "hasco {} should clearly beat the im2col library {}",
        hasco.latency_cycles,
        lib.total.latency_cycles
    );
    assert!(lib.conversion.is_some());
}

#[test]
fn partition_space_matches_paper_counts() {
    // End-to-end §IV-B check through the public API.
    let app = TensorApp::new(
        "t",
        vec![suites::conv2d_workload("c", 64, 64, 56, 56, 3, 3)],
    );
    let parts = hasco::partition::partition_app(&app, &IntrinsicKind::ALL, 256);
    let gemm_choices = parts[0]
        .per_intrinsic
        .iter()
        .find(|(k, _)| *k == IntrinsicKind::Gemm)
        .map(|(_, v)| v.len())
        .unwrap();
    assert_eq!(gemm_choices, 6);
}

#[test]
fn chisel_and_gemmini_generators_drive_same_cost_model() {
    use hw_gen::space::Generator;
    let gem = hw_gen::GemminiGenerator::new();
    let chi = hw_gen::ChiselGenerator::new(IntrinsicKind::Gemm);
    let wl = suites::gemm_workload("g", 128, 128, 128);
    let opts = ExplorerOptions {
        pool: 5,
        rounds: 4,
        top_k: 2,
        ..Default::default()
    };
    let explorer = SoftwareExplorer::new(4);
    for generator in [&gem as &dyn Generator, &chi as &dyn Generator] {
        let point = vec![0; generator.space().len()];
        let cfg = generator.generate(&point).unwrap();
        let m = explorer.best_metrics(&wl, &cfg, &opts).unwrap();
        assert!(m.latency_cycles > 0.0, "{}", generator.name());
    }
}
