//! Explore the HW/SW partition space of tensor computations (§IV of the
//! paper): tensor syntax trees, the two-step matcher, and the tensorize
//! choices each hardware intrinsic admits.
//!
//! ```sh
//! cargo run --release --example mttkrp_tensorize
//! ```

use tensor_ir::intrinsics::{self, IntrinsicKind};
use tensor_ir::matching::{find_tensorize_choices_with_stats, MatchOptions};
use tensor_ir::suites;
use tensor_ir::tst::Tst;

fn count_choices(
    wl: &tensor_ir::workload::Workload,
    intr: &tensor_ir::intrinsics::Intrinsic,
) -> usize {
    tensor_ir::matching::find_tensorize_choices(&wl.comp, &intr.comp, &MatchOptions::default())
        .len()
}

fn main() {
    let conv = suites::conv2d_workload("conv", 64, 64, 56, 56, 3, 3);
    let mttkrp = suites::mttkrp_workload("mttkrp", 128, 128, 128, 128);
    let (stage1, stage2) = suites::mttkrp_stages("mttkrp", 128, 128, 128, 128);

    println!("== tensor syntax trees ==");
    for comp in [&conv.comp, &mttkrp.comp] {
        let tst = Tst::from_computation(comp);
        println!(
            "{}\n  TST: {} ({} leaves)\n",
            comp,
            tst.to_sexpr(comp),
            tst.leaves().len()
        );
    }

    println!("== conv2d -> GEMM (the paper's Fig. 5(b) walkthrough) ==");
    let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
    let (choices, stats) =
        find_tensorize_choices_with_stats(&conv.comp, &gemm.comp, &MatchOptions::default());
    println!(
        "examined {} leaf subsets, {} passed index matching, {} passed structure matching",
        stats.subsets_examined, stats.index_matches, stats.structure_matches
    );
    for c in &choices {
        println!("  {}", c.describe(&conv.comp, &gemm.comp));
    }

    println!("\n== MTTKRP against every intrinsic (the §VII-B analysis) ==");
    for kind in IntrinsicKind::ALL {
        let intr = intrinsics::intrinsic_for(kind, 64);
        println!(
            "  {kind:8}  fused: {:2} choices | stage1: {:2} | stage2: {:2}{}",
            count_choices(&mttkrp, &intr),
            count_choices(&stage1, &intr),
            count_choices(&stage2, &intr),
            match kind {
                IntrinsicKind::Gemm => "   <- GEMM only fits stage 1 (E is materialized)",
                IntrinsicKind::Gemv => "   <- GEMV covers all four loops across stages",
                _ => "",
            }
        );
    }
}
