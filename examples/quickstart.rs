//! Quickstart: co-design an accelerator and software for a tiny GEMM
//! application in under a minute, watching the run's progress events.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! (The one-shot `CoDesigner::new(opts).run(&input)` API still exists and
//! produces the identical solution; this example uses the engine so the
//! progress stream is visible. See `examples/engine_serving.rs` for
//! serving many concurrent requests from one engine.)

use hasco::codesign::CoDesignOptions;
use hasco::engine::{CoDesignRequest, Engine, EngineConfig};
use hasco::event::RunEvent;
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use tensor_ir::suites;
use tensor_ir::workload::TensorApp;

fn main() {
    // 1. Describe the application: two GEMM layers sharing one accelerator.
    let app = TensorApp::new(
        "quickstart",
        vec![
            suites::gemm_workload("layer_0", 256, 256, 256),
            suites::gemm_workload("layer_1", 512, 256, 128),
        ],
    );
    let input = InputDescription {
        app,
        method: GenerationMethod::Gemmini,
        constraints: Constraints::latency_power(50.0, 5_000.0),
    };

    // 2. Submit the three-step co-design flow (partition -> explore ->
    //    tune) to an engine and follow its typed progress events.
    let engine = Engine::new(EngineConfig::default());
    let job = engine
        .submit(CoDesignRequest::new(input, CoDesignOptions::quick(42)))
        .expect("valid request");
    for event in job.events() {
        match event {
            RunEvent::Partitioned { workload, choices } => {
                println!("[partition] {workload}: {choices} tensorize choices");
            }
            RunEvent::BatchEvaluated {
                optimizer,
                batch,
                evaluated,
                feasible,
                ..
            } => {
                println!("[{optimizer} #{batch}] evaluated {evaluated} ({feasible} feasible)");
            }
            RunEvent::SoftwareOptimized {
                workload,
                rounds,
                latency_ms,
            } => {
                println!("[sw-opt] {workload}: {rounds} rounds -> {latency_ms:.3} ms");
            }
            RunEvent::Solved {
                meets_constraints, ..
            } => {
                println!(
                    "[solved] constraints {}",
                    if meets_constraints { "met" } else { "violated" }
                );
            }
            _ => {}
        }
    }
    let solution = job.wait().expect("co-design succeeds on this toy app");

    // 3. Inspect the holistic solution.
    println!("\n== accelerator ==\n{}\n", solution.accelerator);
    println!("== totals ==\n{}\n", solution.total);
    for w in &solution.per_workload {
        println!("== {} ({}) ==", w.workload, w.metrics);
        println!("{}", w.program);
    }
    println!(
        "hardware DSE evaluated {} accelerators ({} Pareto-optimal); constraints {}",
        solution.hw_history.evaluations.len(),
        solution.hw_history.pareto_front().len(),
        if solution.meets_constraints {
            "met"
        } else {
            "violated"
        }
    );
}
