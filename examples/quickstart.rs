//! Quickstart: co-design an accelerator and software for a tiny GEMM
//! application in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hasco::codesign::{CoDesignOptions, CoDesigner};
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use tensor_ir::suites;
use tensor_ir::workload::TensorApp;

fn main() {
    // 1. Describe the application: two GEMM layers sharing one accelerator.
    let app = TensorApp::new(
        "quickstart",
        vec![
            suites::gemm_workload("layer_0", 256, 256, 256),
            suites::gemm_workload("layer_1", 512, 256, 128),
        ],
    );
    let input = InputDescription {
        app,
        method: GenerationMethod::Gemmini,
        constraints: Constraints::latency_power(50.0, 5_000.0),
    };

    // 2. Run the three-step co-design flow (partition -> explore -> tune).
    let solution = CoDesigner::new(CoDesignOptions::quick(42))
        .run(&input)
        .expect("co-design succeeds on this toy app");

    // 3. Inspect the holistic solution.
    println!("== accelerator ==\n{}\n", solution.accelerator);
    println!("== totals ==\n{}\n", solution.total);
    for w in &solution.per_workload {
        println!("== {} ({}) ==", w.workload, w.metrics);
        println!("{}", w.program);
    }
    println!(
        "hardware DSE evaluated {} accelerators ({} Pareto-optimal); constraints {}",
        solution.hw_history.evaluations.len(),
        solution.hw_history.pareto_front().len(),
        if solution.meets_constraints {
            "met"
        } else {
            "violated"
        }
    );
}
