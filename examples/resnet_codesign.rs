//! Co-design an accelerator for (a subset of) ResNet-50 and compare the
//! result against the traditional decoupled flow: a fixed default
//! accelerator plus an AutoTVM-style tuner per layer.
//!
//! ```sh
//! cargo run --release --example resnet_codesign
//! ```

use baselines::AutoTvm;
use hasco::codesign::{CoDesignOptions, CoDesigner};
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use hasco::report::{speedup, Table};
use hw_gen::GemminiGenerator;
use tensor_ir::suites;
use tensor_ir::workload::TensorApp;

fn main() {
    // Eight representative layers keep the example fast; use the full 53
    // with `suites::resnet50()` if you have a few minutes.
    let convs = suites::resnet50_convs();
    let layers: Vec<_> = convs.iter().step_by(7).cloned().collect();
    println!("co-designing for {} ResNet-50 layers...", layers.len());

    let input = InputDescription {
        app: TensorApp::new("resnet_subset", layers.clone()),
        method: GenerationMethod::Gemmini,
        constraints: Constraints {
            max_power_mw: Some(2_000.0),
            ..Default::default()
        },
    };
    let designer = CoDesigner::new(CoDesignOptions::paper(7));
    let solution = designer.run(&input).expect("co-design succeeds");

    // Decoupled baseline: default edge Gemmini + AutoTVM software.
    let baseline_cfg = GemminiGenerator::baseline(false);
    let tvm = AutoTvm::new(7);
    let mut table = Table::new(&["layer", "baseline+AutoTVM (ms)", "HASCO (ms)", "speedup"]);
    let mut base_total = 0.0;
    for (w, sol) in layers.iter().zip(&solution.per_workload) {
        let base = tvm
            .best_metrics(w, &baseline_cfg)
            .expect("baseline maps layer");
        base_total += base.latency_ms;
        table.row(vec![
            w.name.clone(),
            format!("{:.3}", base.latency_ms),
            format!("{:.3}", sol.metrics.latency_ms),
            speedup(base.latency_ms, sol.metrics.latency_ms),
        ]);
    }
    println!("{}", table.render());
    println!("chosen accelerator: {}", solution.accelerator);
    println!(
        "app latency: baseline {:.2} ms vs HASCO {:.2} ms ({} co-design gain; paper: 1.25-1.44X)",
        base_total,
        solution.total.latency_ms,
        speedup(base_total, solution.total.latency_ms)
    );
}
