//! Scale one application across power envelopes (the paper's Table III
//! scenarios): the same co-design flow produces an edge-sized accelerator
//! at 2 W and a cloud-sized one at 20 W.
//!
//! ```sh
//! cargo run --release --example edge_cloud_scaling
//! ```

use hasco::codesign::{CoDesignOptions, CoDesigner};
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use hasco::report::Table;
use tensor_ir::suites;
use tensor_ir::workload::TensorApp;

fn main() {
    let layers: Vec<_> = suites::mobilenet_convs().into_iter().step_by(5).collect();
    println!(
        "scaling a {}-layer MobileNet subset across scenarios...\n",
        layers.len()
    );

    let mut table = Table::new(&[
        "scenario",
        "power cap",
        "PEs",
        "spad KB",
        "banks",
        "latency (ms)",
        "power (mW)",
    ]);
    for (name, cap_mw) in [("edge", 2_000.0), ("cloud", 20_000.0)] {
        let input = InputDescription {
            app: TensorApp::new("mobilenet_subset", layers.clone()),
            method: GenerationMethod::Gemmini,
            constraints: Constraints {
                max_power_mw: Some(cap_mw),
                ..Default::default()
            },
        };
        let solution = CoDesigner::new(CoDesignOptions::paper(11))
            .run(&input)
            .expect("co-design succeeds");
        table.row(vec![
            name.into(),
            format!("{cap_mw} mW"),
            solution.accelerator.pes().to_string(),
            (solution.accelerator.scratchpad_bytes / 1024).to_string(),
            solution.accelerator.banks.to_string(),
            format!("{:.3}", solution.total.latency_ms),
            format!("{:.1}", solution.total.power_mw),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The cloud budget buys a larger array and scratchpad; the edge\n\
         solution trades latency for the 2 W envelope - one flow, two designs."
    );
}
