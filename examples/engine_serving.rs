//! Serving co-design as a resident service: one `hasco::Engine`, many
//! concurrent requests, streamed progress, warm repeat traffic, and a
//! campaign fan-out — the shape of a production deployment, where the
//! worker pool, the evaluation cache, and surrogate training amortize
//! across every request instead of being rebuilt per call.
//!
//! ```sh
//! cargo run --release --example engine_serving
//! ```

use hasco::codesign::CoDesignOptions;
use hasco::engine::{CoDesignRequest, Engine, EngineConfig};
use hasco::event::RunEvent;
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use tensor_ir::suites;
use tensor_ir::workload::TensorApp;

fn edge_input() -> InputDescription {
    InputDescription {
        app: TensorApp::new(
            "edge-cnn",
            vec![
                suites::conv2d_workload("c1", 64, 64, 28, 28, 3, 3),
                suites::gemm_workload("fc", 256, 256, 128),
            ],
        ),
        method: GenerationMethod::Gemmini,
        constraints: Constraints {
            max_power_mw: Some(2_000.0),
            ..Constraints::default()
        },
    }
}

fn cloud_input() -> InputDescription {
    let mut input = edge_input();
    input.app = TensorApp::new("cloud-cnn", input.app.workloads);
    input.constraints = Constraints {
        max_power_mw: Some(20_000.0),
        ..Constraints::default()
    };
    input
}

fn main() {
    // A resident engine: two concurrent job slots sharing one memo store.
    let engine = Engine::new(EngineConfig::default().with_job_slots(2));

    // --- Concurrent submissions with live progress ---------------------
    // Submit two requests back to back; both run at once. Each handle
    // streams typed events; a background thread tails one stream while
    // the main thread tails the other.
    println!("== two concurrent jobs ==");
    let edge_job = engine
        .submit(CoDesignRequest::new(
            edge_input(),
            CoDesignOptions::quick(7),
        ))
        .expect("valid request");
    let cloud_job = engine
        .submit(CoDesignRequest::new(
            cloud_input(),
            CoDesignOptions::quick(7),
        ))
        .expect("valid request");

    let edge_events = edge_job.events();
    let tail = std::thread::spawn(move || {
        let mut batches = 0;
        for event in edge_events {
            if matches!(event, RunEvent::BatchEvaluated { .. }) {
                batches += 1;
            }
        }
        batches
    });
    let mut cloud_batches = 0;
    for event in cloud_job.events() {
        match event {
            RunEvent::BatchEvaluated { .. } => cloud_batches += 1,
            RunEvent::Solved {
                meets_constraints, ..
            } => println!(
                "cloud job solved (constraints {})",
                if meets_constraints { "met" } else { "violated" }
            ),
            _ => {}
        }
    }
    let edge_batches = tail.join().expect("event tailer");

    let edge = edge_job.wait().expect("edge job succeeds");
    let cloud = cloud_job.wait().expect("cloud job succeeds");
    println!(
        "edge:  {} ({} DSE batches, {} cache misses)",
        edge.accelerator, edge_batches, edge.stats.cache.misses
    );
    println!(
        "cloud: {} ({} DSE batches, {} cache misses)",
        cloud.accelerator, cloud_batches, cloud.stats.cache.misses
    );

    // --- Warm repeat traffic -------------------------------------------
    // Both waits above published their evaluations into the shared
    // store, so a repeat of the edge request starts warm: same solution,
    // a fraction of the work.
    println!("\n== warm repeat ==");
    let repeat = engine
        .submit(CoDesignRequest::new(
            edge_input(),
            CoDesignOptions::quick(7),
        ))
        .expect("valid request")
        .wait()
        .expect("repeat succeeds");
    assert_eq!(repeat.accelerator, edge.accelerator);
    println!(
        "repeat: {} warm entries, {} misses (cold run: {}), identical solution",
        repeat.stats.warm_cache_entries, repeat.stats.cache.misses, edge.stats.cache.misses
    );

    // --- Campaign fan-out ----------------------------------------------
    // A scenario matrix (here: two power envelopes x two seeds) runs as
    // one campaign: identical scenarios deduplicate, and later waves
    // start warm from earlier ones.
    println!("\n== campaign ==");
    let mut matrix = Vec::new();
    for (scenario, input) in [("edge", edge_input()), ("cloud", cloud_input())] {
        for seed in [7, 11] {
            matrix.push(
                CoDesignRequest::new(input.clone(), CoDesignOptions::quick(seed))
                    .with_label(format!("{scenario}/seed{seed}")),
            );
        }
    }
    // An exact repeat of an earlier scenario: the campaign detects it and
    // reuses the representative's solution without running a job.
    matrix.push(
        CoDesignRequest::new(edge_input(), CoDesignOptions::quick(7)).with_label("edge/retry"),
    );
    let outcomes = engine.campaign(matrix).expect("campaign succeeds");
    for outcome in &outcomes {
        println!(
            "{:>12}: {} ({} warm entries{})",
            outcome.label,
            outcome.solution.accelerator,
            outcome.solution.stats.warm_cache_entries,
            match &outcome.shared_with {
                Some(with) => format!(", deduplicated with {with}"),
                None => String::new(),
            },
        );
    }
    println!(
        "\nengine executed {} jobs total; store holds {} entries",
        engine.jobs_executed(),
        engine.warm_entries()
    );

    // --- Network serving ------------------------------------------------
    // The same engine shape behind a TCP front-end: `hasco-serve` wraps a
    // resident engine, worker processes register to absorb the expensive
    // trace-sim batches, and a thin client submits jobs from another
    // process. Here everything runs over loopback in one process, but the
    // wire is the real one — and the solution is bit-identical to running
    // the request in-process, because sharding only moves pure functions.
    println!("\n== network serving ==");
    let staged = || {
        CoDesignRequest::new(
            edge_input(),
            CoDesignOptions::quick(7).with_refinement(accel_model::BackendKind::TraceSim, 2),
        )
    };

    // Reference leg: a fresh local engine, no network anywhere.
    let local = Engine::new(EngineConfig::default())
        .submit(staged())
        .expect("valid request")
        .wait()
        .expect("local leg succeeds");

    // Served leg: front-end + one remote worker + client, all loopback.
    let server = hasco_net::Server::bind(
        "127.0.0.1:0",
        EngineConfig::default(),
        hasco_net::ServerOptions {
            min_workers: 1,
            ..hasco_net::ServerOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr().to_string();
    let worker = hasco_net::WorkerHandle::spawn(&addr);
    let client = hasco_net::Client::connect(&addr).expect("reach server");

    let job = client.submit(staged()).expect("server accepts");
    let mut served_batches = 0;
    for event in job.events() {
        if matches!(event, RunEvent::BatchEvaluated { .. }) {
            served_batches += 1;
        }
    }
    let served = job.wait().expect("served leg succeeds");
    server.shutdown();
    let worker_batches = worker.join().expect("worker exits cleanly");

    assert_eq!(served.accelerator, local.accelerator);
    assert_eq!(
        served.total.latency_ms.to_bits(),
        local.total.latency_ms.to_bits(),
        "remote dispatch must be bit-identical to in-process evaluation"
    );
    assert!(worker_batches > 0, "the worker should have served batches");
    println!(
        "served: {} ({} DSE batches streamed, {} evaluation shards on the worker) \
         — bit-identical to the in-process run",
        served.accelerator, served_batches, worker_batches
    );
}
