/root/repo/target/release/libhasco_repro.rlib: /root/repo/src/lib.rs
