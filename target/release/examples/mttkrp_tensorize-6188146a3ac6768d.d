/root/repo/target/release/examples/mttkrp_tensorize-6188146a3ac6768d.d: examples/mttkrp_tensorize.rs

/root/repo/target/release/examples/mttkrp_tensorize-6188146a3ac6768d: examples/mttkrp_tensorize.rs

examples/mttkrp_tensorize.rs:
