/root/repo/target/release/examples/edge_cloud_scaling-73419570215fbb45.d: examples/edge_cloud_scaling.rs

/root/repo/target/release/examples/edge_cloud_scaling-73419570215fbb45: examples/edge_cloud_scaling.rs

examples/edge_cloud_scaling.rs:
