/root/repo/target/release/examples/quickstart-d60c1987fa40dcc2.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d60c1987fa40dcc2: examples/quickstart.rs

examples/quickstart.rs:
