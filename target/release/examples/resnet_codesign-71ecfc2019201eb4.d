/root/repo/target/release/examples/resnet_codesign-71ecfc2019201eb4.d: examples/resnet_codesign.rs

/root/repo/target/release/examples/resnet_codesign-71ecfc2019201eb4: examples/resnet_codesign.rs

examples/resnet_codesign.rs:
