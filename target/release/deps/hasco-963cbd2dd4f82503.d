/root/repo/target/release/deps/hasco-963cbd2dd4f82503.d: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs

/root/repo/target/release/deps/hasco-963cbd2dd4f82503: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/codesign.rs:
crates/core/src/input.rs:
crates/core/src/partition.rs:
crates/core/src/report.rs:
crates/core/src/solution.rs:
crates/core/src/tuning.rs:
