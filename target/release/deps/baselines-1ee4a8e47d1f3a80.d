/root/repo/target/release/deps/baselines-1ee4a8e47d1f3a80.d: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

/root/repo/target/release/deps/baselines-1ee4a8e47d1f3a80: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

crates/baselines/src/lib.rs:
crates/baselines/src/autotvm.rs:
crates/baselines/src/hls.rs:
crates/baselines/src/library.rs:
