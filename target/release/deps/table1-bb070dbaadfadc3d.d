/root/repo/target/release/deps/table1-bb070dbaadfadc3d.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-bb070dbaadfadc3d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
