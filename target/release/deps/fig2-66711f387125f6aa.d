/root/repo/target/release/deps/fig2-66711f387125f6aa.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-66711f387125f6aa: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
