/root/repo/target/release/deps/runtime-b1d8f3f715adabd4.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

/root/repo/target/release/deps/libruntime-b1d8f3f715adabd4.rlib: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

/root/repo/target/release/deps/libruntime-b1d8f3f715adabd4.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/fingerprint.rs:
crates/runtime/src/pool.rs:
