/root/repo/target/release/deps/baselines-6981af985310a762.d: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

/root/repo/target/release/deps/libbaselines-6981af985310a762.rlib: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

/root/repo/target/release/deps/libbaselines-6981af985310a762.rmeta: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

crates/baselines/src/lib.rs:
crates/baselines/src/autotvm.rs:
crates/baselines/src/hls.rs:
crates/baselines/src/library.rs:
