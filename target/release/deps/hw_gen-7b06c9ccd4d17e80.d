/root/repo/target/release/deps/hw_gen-7b06c9ccd4d17e80.d: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

/root/repo/target/release/deps/libhw_gen-7b06c9ccd4d17e80.rlib: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

/root/repo/target/release/deps/libhw_gen-7b06c9ccd4d17e80.rmeta: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

crates/hw-gen/src/lib.rs:
crates/hw-gen/src/chisel.rs:
crates/hw-gen/src/gemmini.rs:
crates/hw-gen/src/primitives.rs:
crates/hw-gen/src/space.rs:
