/root/repo/target/release/deps/runtime_determinism-2832686568f0f4a6.d: tests/runtime_determinism.rs

/root/repo/target/release/deps/runtime_determinism-2832686568f0f4a6: tests/runtime_determinism.rs

tests/runtime_determinism.rs:
