/root/repo/target/release/deps/rand-1b8c543ba8c7fe08.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-1b8c543ba8c7fe08.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-1b8c543ba8c7fe08.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
