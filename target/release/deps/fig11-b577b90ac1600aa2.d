/root/repo/target/release/deps/fig11-b577b90ac1600aa2.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-b577b90ac1600aa2: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
