/root/repo/target/release/deps/fig10-09432c4355045ad9.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-09432c4355045ad9: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
