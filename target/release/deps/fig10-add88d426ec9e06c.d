/root/repo/target/release/deps/fig10-add88d426ec9e06c.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-add88d426ec9e06c: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
