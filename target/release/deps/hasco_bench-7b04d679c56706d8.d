/root/repo/target/release/deps/hasco_bench-7b04d679c56706d8.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/common.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig2.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fig9.rs crates/bench/src/table1.rs crates/bench/src/table2.rs crates/bench/src/table3.rs

/root/repo/target/release/deps/hasco_bench-7b04d679c56706d8: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/common.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig2.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fig9.rs crates/bench/src/table1.rs crates/bench/src/table2.rs crates/bench/src/table3.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/common.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fig7.rs:
crates/bench/src/fig8.rs:
crates/bench/src/fig9.rs:
crates/bench/src/table1.rs:
crates/bench/src/table2.rs:
crates/bench/src/table3.rs:
