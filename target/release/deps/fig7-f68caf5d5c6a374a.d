/root/repo/target/release/deps/fig7-f68caf5d5c6a374a.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-f68caf5d5c6a374a: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
