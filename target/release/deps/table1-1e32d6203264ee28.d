/root/repo/target/release/deps/table1-1e32d6203264ee28.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-1e32d6203264ee28: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
