/root/repo/target/release/deps/fig8-710a167c3fcc0e74.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-710a167c3fcc0e74: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
