/root/repo/target/release/deps/table3-0cfcb131908b986c.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-0cfcb131908b986c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
