/root/repo/target/release/deps/fig8-fcd197870c50a0ea.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-fcd197870c50a0ea: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
