/root/repo/target/release/deps/fig7-704c8528bae5f8a1.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-704c8528bae5f8a1: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
