/root/repo/target/release/deps/table2-14cd1bc78e7c20f3.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-14cd1bc78e7c20f3: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
