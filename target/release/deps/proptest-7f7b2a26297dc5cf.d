/root/repo/target/release/deps/proptest-7f7b2a26297dc5cf.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/release/deps/libproptest-7f7b2a26297dc5cf.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/release/deps/libproptest-7f7b2a26297dc5cf.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
