/root/repo/target/release/deps/fig9-a253b829a45d0dd9.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-a253b829a45d0dd9: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
