/root/repo/target/release/deps/serde-83ac31df2ccd5bc7.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-83ac31df2ccd5bc7.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-83ac31df2ccd5bc7.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
