/root/repo/target/release/deps/hw_gen-b8460611293b1585.d: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

/root/repo/target/release/deps/hw_gen-b8460611293b1585: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

crates/hw-gen/src/lib.rs:
crates/hw-gen/src/chisel.rs:
crates/hw-gen/src/gemmini.rs:
crates/hw-gen/src/primitives.rs:
crates/hw-gen/src/space.rs:
