/root/repo/target/release/deps/table3-411c6ff98d135788.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-411c6ff98d135788: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
