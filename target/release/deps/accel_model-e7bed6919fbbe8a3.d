/root/repo/target/release/deps/accel_model-e7bed6919fbbe8a3.d: crates/accel-model/src/lib.rs crates/accel-model/src/arch.rs crates/accel-model/src/area.rs crates/accel-model/src/cost.rs crates/accel-model/src/energy.rs crates/accel-model/src/isa.rs crates/accel-model/src/metrics.rs crates/accel-model/src/plan.rs crates/accel-model/src/sim.rs crates/accel-model/src/tech.rs

/root/repo/target/release/deps/libaccel_model-e7bed6919fbbe8a3.rlib: crates/accel-model/src/lib.rs crates/accel-model/src/arch.rs crates/accel-model/src/area.rs crates/accel-model/src/cost.rs crates/accel-model/src/energy.rs crates/accel-model/src/isa.rs crates/accel-model/src/metrics.rs crates/accel-model/src/plan.rs crates/accel-model/src/sim.rs crates/accel-model/src/tech.rs

/root/repo/target/release/deps/libaccel_model-e7bed6919fbbe8a3.rmeta: crates/accel-model/src/lib.rs crates/accel-model/src/arch.rs crates/accel-model/src/area.rs crates/accel-model/src/cost.rs crates/accel-model/src/energy.rs crates/accel-model/src/isa.rs crates/accel-model/src/metrics.rs crates/accel-model/src/plan.rs crates/accel-model/src/sim.rs crates/accel-model/src/tech.rs

crates/accel-model/src/lib.rs:
crates/accel-model/src/arch.rs:
crates/accel-model/src/area.rs:
crates/accel-model/src/cost.rs:
crates/accel-model/src/energy.rs:
crates/accel-model/src/isa.rs:
crates/accel-model/src/metrics.rs:
crates/accel-model/src/plan.rs:
crates/accel-model/src/sim.rs:
crates/accel-model/src/tech.rs:
