/root/repo/target/release/deps/properties-0311569a25141495.d: tests/properties.rs

/root/repo/target/release/deps/properties-0311569a25141495: tests/properties.rs

tests/properties.rs:
