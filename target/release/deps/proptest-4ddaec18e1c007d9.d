/root/repo/target/release/deps/proptest-4ddaec18e1c007d9.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/release/deps/proptest-4ddaec18e1c007d9: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
