/root/repo/target/release/deps/sw_opt-b09edaf770e18262.d: crates/sw-opt/src/lib.rs crates/sw-opt/src/codegen.rs crates/sw-opt/src/explorer.rs crates/sw-opt/src/heuristic.rs crates/sw-opt/src/interface.rs crates/sw-opt/src/lowering.rs crates/sw-opt/src/nn.rs crates/sw-opt/src/primitives.rs crates/sw-opt/src/qlearn.rs crates/sw-opt/src/schedule.rs

/root/repo/target/release/deps/sw_opt-b09edaf770e18262: crates/sw-opt/src/lib.rs crates/sw-opt/src/codegen.rs crates/sw-opt/src/explorer.rs crates/sw-opt/src/heuristic.rs crates/sw-opt/src/interface.rs crates/sw-opt/src/lowering.rs crates/sw-opt/src/nn.rs crates/sw-opt/src/primitives.rs crates/sw-opt/src/qlearn.rs crates/sw-opt/src/schedule.rs

crates/sw-opt/src/lib.rs:
crates/sw-opt/src/codegen.rs:
crates/sw-opt/src/explorer.rs:
crates/sw-opt/src/heuristic.rs:
crates/sw-opt/src/interface.rs:
crates/sw-opt/src/lowering.rs:
crates/sw-opt/src/nn.rs:
crates/sw-opt/src/primitives.rs:
crates/sw-opt/src/qlearn.rs:
crates/sw-opt/src/schedule.rs:
