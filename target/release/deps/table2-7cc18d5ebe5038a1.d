/root/repo/target/release/deps/table2-7cc18d5ebe5038a1.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-7cc18d5ebe5038a1: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
