/root/repo/target/release/deps/criterion-681b5b8f69856a86.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-681b5b8f69856a86: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
