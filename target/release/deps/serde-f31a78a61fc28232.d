/root/repo/target/release/deps/serde-f31a78a61fc28232.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-f31a78a61fc28232: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
