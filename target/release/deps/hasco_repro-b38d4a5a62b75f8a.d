/root/repo/target/release/deps/hasco_repro-b38d4a5a62b75f8a.d: src/lib.rs

/root/repo/target/release/deps/hasco_repro-b38d4a5a62b75f8a: src/lib.rs

src/lib.rs:
