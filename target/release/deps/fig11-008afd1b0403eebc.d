/root/repo/target/release/deps/fig11-008afd1b0403eebc.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-008afd1b0403eebc: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
