/root/repo/target/release/deps/failure_injection-a203aacd317861ae.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-a203aacd317861ae: tests/failure_injection.rs

tests/failure_injection.rs:
