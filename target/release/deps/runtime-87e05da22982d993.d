/root/repo/target/release/deps/runtime-87e05da22982d993.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

/root/repo/target/release/deps/runtime-87e05da22982d993: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/fingerprint.rs:
crates/runtime/src/pool.rs:
