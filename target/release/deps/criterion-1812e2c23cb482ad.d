/root/repo/target/release/deps/criterion-1812e2c23cb482ad.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-1812e2c23cb482ad.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-1812e2c23cb482ad.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
