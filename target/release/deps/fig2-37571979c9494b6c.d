/root/repo/target/release/deps/fig2-37571979c9494b6c.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-37571979c9494b6c: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
