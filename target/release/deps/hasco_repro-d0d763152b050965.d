/root/repo/target/release/deps/hasco_repro-d0d763152b050965.d: src/lib.rs

/root/repo/target/release/deps/libhasco_repro-d0d763152b050965.rlib: src/lib.rs

/root/repo/target/release/deps/libhasco_repro-d0d763152b050965.rmeta: src/lib.rs

src/lib.rs:
