/root/repo/target/release/deps/integration-c9c0c6a291281417.d: tests/integration.rs

/root/repo/target/release/deps/integration-c9c0c6a291281417: tests/integration.rs

tests/integration.rs:
