/root/repo/target/release/deps/tensor_ir-989c60172dd40489.d: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs

/root/repo/target/release/deps/tensor_ir-989c60172dd40489: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs

crates/tensor-ir/src/lib.rs:
crates/tensor-ir/src/complexity.rs:
crates/tensor-ir/src/expr.rs:
crates/tensor-ir/src/index.rs:
crates/tensor-ir/src/intrinsics.rs:
crates/tensor-ir/src/matching.rs:
crates/tensor-ir/src/suites.rs:
crates/tensor-ir/src/tst.rs:
crates/tensor-ir/src/workload.rs:
