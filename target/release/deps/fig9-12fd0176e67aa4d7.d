/root/repo/target/release/deps/fig9-12fd0176e67aa4d7.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-12fd0176e67aa4d7: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
