/root/repo/target/release/deps/rand-6da2282b49584fd9.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-6da2282b49584fd9: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
