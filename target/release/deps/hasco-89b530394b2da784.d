/root/repo/target/release/deps/hasco-89b530394b2da784.d: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs

/root/repo/target/release/deps/libhasco-89b530394b2da784.rlib: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs

/root/repo/target/release/deps/libhasco-89b530394b2da784.rmeta: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/codesign.rs:
crates/core/src/input.rs:
crates/core/src/partition.rs:
crates/core/src/report.rs:
crates/core/src/solution.rs:
crates/core/src/tuning.rs:
