/root/repo/target/release/deps/tensor_ir-1975e295ddaa6cda.d: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs

/root/repo/target/release/deps/libtensor_ir-1975e295ddaa6cda.rlib: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs

/root/repo/target/release/deps/libtensor_ir-1975e295ddaa6cda.rmeta: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs

crates/tensor-ir/src/lib.rs:
crates/tensor-ir/src/complexity.rs:
crates/tensor-ir/src/expr.rs:
crates/tensor-ir/src/index.rs:
crates/tensor-ir/src/intrinsics.rs:
crates/tensor-ir/src/matching.rs:
crates/tensor-ir/src/suites.rs:
crates/tensor-ir/src/tst.rs:
crates/tensor-ir/src/workload.rs:
