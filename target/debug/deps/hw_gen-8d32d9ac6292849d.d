/root/repo/target/debug/deps/hw_gen-8d32d9ac6292849d.d: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libhw_gen-8d32d9ac6292849d.rmeta: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs Cargo.toml

crates/hw-gen/src/lib.rs:
crates/hw-gen/src/chisel.rs:
crates/hw-gen/src/gemmini.rs:
crates/hw-gen/src/primitives.rs:
crates/hw-gen/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
