/root/repo/target/debug/deps/criterion-edf6d8771e94d4d0.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-edf6d8771e94d4d0.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
