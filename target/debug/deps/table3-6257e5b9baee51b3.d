/root/repo/target/debug/deps/table3-6257e5b9baee51b3.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-6257e5b9baee51b3.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
