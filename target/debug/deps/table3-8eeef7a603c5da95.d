/root/repo/target/debug/deps/table3-8eeef7a603c5da95.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-8eeef7a603c5da95: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
