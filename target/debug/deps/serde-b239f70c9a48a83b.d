/root/repo/target/debug/deps/serde-b239f70c9a48a83b.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b239f70c9a48a83b.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b239f70c9a48a83b.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
