/root/repo/target/debug/deps/fig2-f4d1d86b0798eef7.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-f4d1d86b0798eef7.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
