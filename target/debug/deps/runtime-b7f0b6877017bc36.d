/root/repo/target/debug/deps/runtime-b7f0b6877017bc36.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-b7f0b6877017bc36.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/fingerprint.rs:
crates/runtime/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
