/root/repo/target/debug/deps/probe_mobo-34da67b56f8464df.d: crates/bench/tests/probe_mobo.rs

/root/repo/target/debug/deps/probe_mobo-34da67b56f8464df: crates/bench/tests/probe_mobo.rs

crates/bench/tests/probe_mobo.rs:
