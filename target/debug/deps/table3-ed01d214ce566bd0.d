/root/repo/target/debug/deps/table3-ed01d214ce566bd0.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-ed01d214ce566bd0.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
