/root/repo/target/debug/deps/runtime-5e81f43a22d79164.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-5e81f43a22d79164.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/fingerprint.rs:
crates/runtime/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
