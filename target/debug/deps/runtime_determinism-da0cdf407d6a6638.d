/root/repo/target/debug/deps/runtime_determinism-da0cdf407d6a6638.d: tests/runtime_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_determinism-da0cdf407d6a6638.rmeta: tests/runtime_determinism.rs Cargo.toml

tests/runtime_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
