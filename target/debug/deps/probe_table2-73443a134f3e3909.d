/root/repo/target/debug/deps/probe_table2-73443a134f3e3909.d: crates/bench/tests/probe_table2.rs

/root/repo/target/debug/deps/probe_table2-73443a134f3e3909: crates/bench/tests/probe_table2.rs

crates/bench/tests/probe_table2.rs:
