/root/repo/target/debug/deps/fig2-bf90f3711bd47667.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/libfig2-bf90f3711bd47667.rmeta: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
