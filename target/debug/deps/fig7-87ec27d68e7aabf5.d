/root/repo/target/debug/deps/fig7-87ec27d68e7aabf5.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-87ec27d68e7aabf5: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
