/root/repo/target/debug/deps/rand-1252812b9949c9a8.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-1252812b9949c9a8.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-1252812b9949c9a8.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
