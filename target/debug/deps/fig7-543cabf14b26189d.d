/root/repo/target/debug/deps/fig7-543cabf14b26189d.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-543cabf14b26189d.rmeta: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
