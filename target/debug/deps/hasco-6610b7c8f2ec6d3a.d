/root/repo/target/debug/deps/hasco-6610b7c8f2ec6d3a.d: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs

/root/repo/target/debug/deps/libhasco-6610b7c8f2ec6d3a.rmeta: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/codesign.rs:
crates/core/src/input.rs:
crates/core/src/partition.rs:
crates/core/src/report.rs:
crates/core/src/solution.rs:
crates/core/src/tuning.rs:
