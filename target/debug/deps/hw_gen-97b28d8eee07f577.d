/root/repo/target/debug/deps/hw_gen-97b28d8eee07f577.d: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

/root/repo/target/debug/deps/hw_gen-97b28d8eee07f577: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

crates/hw-gen/src/lib.rs:
crates/hw-gen/src/chisel.rs:
crates/hw-gen/src/gemmini.rs:
crates/hw-gen/src/primitives.rs:
crates/hw-gen/src/space.rs:
