/root/repo/target/debug/deps/baselines-994c095676f0754b.d: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

/root/repo/target/debug/deps/baselines-994c095676f0754b: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

crates/baselines/src/lib.rs:
crates/baselines/src/autotvm.rs:
crates/baselines/src/hls.rs:
crates/baselines/src/library.rs:
