/root/repo/target/debug/deps/integration-894946094391e432.d: tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-894946094391e432.rmeta: tests/integration.rs Cargo.toml

tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
