/root/repo/target/debug/deps/baselines-0aa1c16b214f6cd8.d: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

/root/repo/target/debug/deps/libbaselines-0aa1c16b214f6cd8.rmeta: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

crates/baselines/src/lib.rs:
crates/baselines/src/autotvm.rs:
crates/baselines/src/hls.rs:
crates/baselines/src/library.rs:
