/root/repo/target/debug/deps/fig8-cd0e5545dd25484d.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-cd0e5545dd25484d: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
