/root/repo/target/debug/deps/hasco-54ac8a62ee312e40.d: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs Cargo.toml

/root/repo/target/debug/deps/libhasco-54ac8a62ee312e40.rmeta: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/codesign.rs:
crates/core/src/input.rs:
crates/core/src/partition.rs:
crates/core/src/report.rs:
crates/core/src/solution.rs:
crates/core/src/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
