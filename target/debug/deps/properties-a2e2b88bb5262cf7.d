/root/repo/target/debug/deps/properties-a2e2b88bb5262cf7.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a2e2b88bb5262cf7.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
