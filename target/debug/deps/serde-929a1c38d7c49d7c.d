/root/repo/target/debug/deps/serde-929a1c38d7c49d7c.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-929a1c38d7c49d7c.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
