/root/repo/target/debug/deps/fig2-fffc087973002824.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-fffc087973002824.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
