/root/repo/target/debug/deps/fig8-566efcfc77980b1d.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-566efcfc77980b1d.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
