/root/repo/target/debug/deps/hw_gen-0507f84c740d8589.d: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

/root/repo/target/debug/deps/libhw_gen-0507f84c740d8589.rmeta: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

crates/hw-gen/src/lib.rs:
crates/hw-gen/src/chisel.rs:
crates/hw-gen/src/gemmini.rs:
crates/hw-gen/src/primitives.rs:
crates/hw-gen/src/space.rs:
