/root/repo/target/debug/deps/fig10-78be9cdefa7365e9.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-78be9cdefa7365e9.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
