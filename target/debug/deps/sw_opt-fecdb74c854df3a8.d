/root/repo/target/debug/deps/sw_opt-fecdb74c854df3a8.d: crates/sw-opt/src/lib.rs crates/sw-opt/src/codegen.rs crates/sw-opt/src/explorer.rs crates/sw-opt/src/heuristic.rs crates/sw-opt/src/interface.rs crates/sw-opt/src/lowering.rs crates/sw-opt/src/nn.rs crates/sw-opt/src/primitives.rs crates/sw-opt/src/qlearn.rs crates/sw-opt/src/schedule.rs

/root/repo/target/debug/deps/libsw_opt-fecdb74c854df3a8.rmeta: crates/sw-opt/src/lib.rs crates/sw-opt/src/codegen.rs crates/sw-opt/src/explorer.rs crates/sw-opt/src/heuristic.rs crates/sw-opt/src/interface.rs crates/sw-opt/src/lowering.rs crates/sw-opt/src/nn.rs crates/sw-opt/src/primitives.rs crates/sw-opt/src/qlearn.rs crates/sw-opt/src/schedule.rs

crates/sw-opt/src/lib.rs:
crates/sw-opt/src/codegen.rs:
crates/sw-opt/src/explorer.rs:
crates/sw-opt/src/heuristic.rs:
crates/sw-opt/src/interface.rs:
crates/sw-opt/src/lowering.rs:
crates/sw-opt/src/nn.rs:
crates/sw-opt/src/primitives.rs:
crates/sw-opt/src/qlearn.rs:
crates/sw-opt/src/schedule.rs:
