/root/repo/target/debug/deps/proptest-2d1268d3f130fdf7.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-2d1268d3f130fdf7.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
