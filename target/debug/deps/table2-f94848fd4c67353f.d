/root/repo/target/debug/deps/table2-f94848fd4c67353f.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-f94848fd4c67353f.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
