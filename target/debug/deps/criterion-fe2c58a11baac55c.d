/root/repo/target/debug/deps/criterion-fe2c58a11baac55c.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-fe2c58a11baac55c.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
