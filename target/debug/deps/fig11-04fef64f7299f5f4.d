/root/repo/target/debug/deps/fig11-04fef64f7299f5f4.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-04fef64f7299f5f4.rmeta: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
