/root/repo/target/debug/deps/criterion-1684cefeb755ea46.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-1684cefeb755ea46.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
