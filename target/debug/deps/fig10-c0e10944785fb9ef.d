/root/repo/target/debug/deps/fig10-c0e10944785fb9ef.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-c0e10944785fb9ef.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
