/root/repo/target/debug/deps/properties-e521764d1dfb4e54.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-e521764d1dfb4e54.rmeta: tests/properties.rs

tests/properties.rs:
