/root/repo/target/debug/deps/fig2-0207899ff5a45602.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-0207899ff5a45602: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
