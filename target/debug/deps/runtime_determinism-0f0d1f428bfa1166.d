/root/repo/target/debug/deps/runtime_determinism-0f0d1f428bfa1166.d: tests/runtime_determinism.rs

/root/repo/target/debug/deps/libruntime_determinism-0f0d1f428bfa1166.rmeta: tests/runtime_determinism.rs

tests/runtime_determinism.rs:
