/root/repo/target/debug/deps/table1-70548fa02acd519d.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-70548fa02acd519d.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
