/root/repo/target/debug/deps/rand-760a2ed3c997bb89.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-760a2ed3c997bb89: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
