/root/repo/target/debug/deps/proptest-13b6039d614a90e2.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-13b6039d614a90e2.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
