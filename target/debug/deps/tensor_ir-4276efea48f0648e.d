/root/repo/target/debug/deps/tensor_ir-4276efea48f0648e.d: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libtensor_ir-4276efea48f0648e.rmeta: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs Cargo.toml

crates/tensor-ir/src/lib.rs:
crates/tensor-ir/src/complexity.rs:
crates/tensor-ir/src/expr.rs:
crates/tensor-ir/src/index.rs:
crates/tensor-ir/src/intrinsics.rs:
crates/tensor-ir/src/matching.rs:
crates/tensor-ir/src/suites.rs:
crates/tensor-ir/src/tst.rs:
crates/tensor-ir/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
