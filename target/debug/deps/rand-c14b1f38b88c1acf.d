/root/repo/target/debug/deps/rand-c14b1f38b88c1acf.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c14b1f38b88c1acf.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
