/root/repo/target/debug/deps/baselines-24e46e05425f8ee3.d: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-24e46e05425f8ee3.rmeta: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/autotvm.rs:
crates/baselines/src/hls.rs:
crates/baselines/src/library.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
