/root/repo/target/debug/deps/hasco-94d71a2c82c1268a.d: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs

/root/repo/target/debug/deps/hasco-94d71a2c82c1268a: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/codesign.rs:
crates/core/src/input.rs:
crates/core/src/partition.rs:
crates/core/src/report.rs:
crates/core/src/solution.rs:
crates/core/src/tuning.rs:
