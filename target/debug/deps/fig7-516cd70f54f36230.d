/root/repo/target/debug/deps/fig7-516cd70f54f36230.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-516cd70f54f36230: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
