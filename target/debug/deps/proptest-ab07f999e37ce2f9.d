/root/repo/target/debug/deps/proptest-ab07f999e37ce2f9.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/proptest-ab07f999e37ce2f9: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
