/root/repo/target/debug/deps/table1-955a926a7bf0fdf8.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-955a926a7bf0fdf8.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
