/root/repo/target/debug/deps/table3-9fbc2839c3ab1be5.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-9fbc2839c3ab1be5.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
