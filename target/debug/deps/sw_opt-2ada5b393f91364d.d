/root/repo/target/debug/deps/sw_opt-2ada5b393f91364d.d: crates/sw-opt/src/lib.rs crates/sw-opt/src/codegen.rs crates/sw-opt/src/explorer.rs crates/sw-opt/src/heuristic.rs crates/sw-opt/src/interface.rs crates/sw-opt/src/lowering.rs crates/sw-opt/src/nn.rs crates/sw-opt/src/primitives.rs crates/sw-opt/src/qlearn.rs crates/sw-opt/src/schedule.rs

/root/repo/target/debug/deps/libsw_opt-2ada5b393f91364d.rlib: crates/sw-opt/src/lib.rs crates/sw-opt/src/codegen.rs crates/sw-opt/src/explorer.rs crates/sw-opt/src/heuristic.rs crates/sw-opt/src/interface.rs crates/sw-opt/src/lowering.rs crates/sw-opt/src/nn.rs crates/sw-opt/src/primitives.rs crates/sw-opt/src/qlearn.rs crates/sw-opt/src/schedule.rs

/root/repo/target/debug/deps/libsw_opt-2ada5b393f91364d.rmeta: crates/sw-opt/src/lib.rs crates/sw-opt/src/codegen.rs crates/sw-opt/src/explorer.rs crates/sw-opt/src/heuristic.rs crates/sw-opt/src/interface.rs crates/sw-opt/src/lowering.rs crates/sw-opt/src/nn.rs crates/sw-opt/src/primitives.rs crates/sw-opt/src/qlearn.rs crates/sw-opt/src/schedule.rs

crates/sw-opt/src/lib.rs:
crates/sw-opt/src/codegen.rs:
crates/sw-opt/src/explorer.rs:
crates/sw-opt/src/heuristic.rs:
crates/sw-opt/src/interface.rs:
crates/sw-opt/src/lowering.rs:
crates/sw-opt/src/nn.rs:
crates/sw-opt/src/primitives.rs:
crates/sw-opt/src/qlearn.rs:
crates/sw-opt/src/schedule.rs:
