/root/repo/target/debug/deps/fig11-d0efd262b782ee85.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-d0efd262b782ee85.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
