/root/repo/target/debug/deps/fig10-8c3a03378b67792b.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-8c3a03378b67792b: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
