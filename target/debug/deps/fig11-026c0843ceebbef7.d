/root/repo/target/debug/deps/fig11-026c0843ceebbef7.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-026c0843ceebbef7.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
