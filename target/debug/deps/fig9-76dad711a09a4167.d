/root/repo/target/debug/deps/fig9-76dad711a09a4167.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-76dad711a09a4167.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
