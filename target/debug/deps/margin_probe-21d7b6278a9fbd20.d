/root/repo/target/debug/deps/margin_probe-21d7b6278a9fbd20.d: tests/margin_probe.rs

/root/repo/target/debug/deps/margin_probe-21d7b6278a9fbd20: tests/margin_probe.rs

tests/margin_probe.rs:
