/root/repo/target/debug/deps/hasco-eb761baedb18fd4d.d: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs Cargo.toml

/root/repo/target/debug/deps/libhasco-eb761baedb18fd4d.rmeta: crates/core/src/lib.rs crates/core/src/codesign.rs crates/core/src/input.rs crates/core/src/partition.rs crates/core/src/report.rs crates/core/src/solution.rs crates/core/src/tuning.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/codesign.rs:
crates/core/src/input.rs:
crates/core/src/partition.rs:
crates/core/src/report.rs:
crates/core/src/solution.rs:
crates/core/src/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
