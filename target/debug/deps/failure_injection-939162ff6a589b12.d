/root/repo/target/debug/deps/failure_injection-939162ff6a589b12.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-939162ff6a589b12: tests/failure_injection.rs

tests/failure_injection.rs:
