/root/repo/target/debug/deps/integration-775edc98f616a9a0.d: tests/integration.rs

/root/repo/target/debug/deps/integration-775edc98f616a9a0: tests/integration.rs

tests/integration.rs:
