/root/repo/target/debug/deps/proptest-ab5a17a2fabc89c2.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ab5a17a2fabc89c2.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
