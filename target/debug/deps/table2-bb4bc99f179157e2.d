/root/repo/target/debug/deps/table2-bb4bc99f179157e2.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-bb4bc99f179157e2: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
