/root/repo/target/debug/deps/runtime-dc74398c65ff8a54.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

/root/repo/target/debug/deps/libruntime-dc74398c65ff8a54.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/fingerprint.rs:
crates/runtime/src/pool.rs:
