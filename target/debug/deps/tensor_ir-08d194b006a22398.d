/root/repo/target/debug/deps/tensor_ir-08d194b006a22398.d: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs

/root/repo/target/debug/deps/tensor_ir-08d194b006a22398: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs

crates/tensor-ir/src/lib.rs:
crates/tensor-ir/src/complexity.rs:
crates/tensor-ir/src/expr.rs:
crates/tensor-ir/src/index.rs:
crates/tensor-ir/src/intrinsics.rs:
crates/tensor-ir/src/matching.rs:
crates/tensor-ir/src/suites.rs:
crates/tensor-ir/src/tst.rs:
crates/tensor-ir/src/workload.rs:
