/root/repo/target/debug/deps/fig7-2c49a870d46db08a.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-2c49a870d46db08a.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
