/root/repo/target/debug/deps/fig9-e6eb75a214b1de96.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-e6eb75a214b1de96.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
