/root/repo/target/debug/deps/baselines-dcccd53572f1195e.d: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

/root/repo/target/debug/deps/libbaselines-dcccd53572f1195e.rlib: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

/root/repo/target/debug/deps/libbaselines-dcccd53572f1195e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

crates/baselines/src/lib.rs:
crates/baselines/src/autotvm.rs:
crates/baselines/src/hls.rs:
crates/baselines/src/library.rs:
