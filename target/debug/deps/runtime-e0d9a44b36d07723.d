/root/repo/target/debug/deps/runtime-e0d9a44b36d07723.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

/root/repo/target/debug/deps/libruntime-e0d9a44b36d07723.rlib: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

/root/repo/target/debug/deps/libruntime-e0d9a44b36d07723.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/fingerprint.rs:
crates/runtime/src/pool.rs:
