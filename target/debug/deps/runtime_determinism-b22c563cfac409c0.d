/root/repo/target/debug/deps/runtime_determinism-b22c563cfac409c0.d: tests/runtime_determinism.rs

/root/repo/target/debug/deps/runtime_determinism-b22c563cfac409c0: tests/runtime_determinism.rs

tests/runtime_determinism.rs:
