/root/repo/target/debug/deps/serde-dffc549aa7967a1a.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-dffc549aa7967a1a.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-dffc549aa7967a1a.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
