/root/repo/target/debug/deps/fig10-7ed98bebc62d38f6.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/libfig10-7ed98bebc62d38f6.rmeta: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
