/root/repo/target/debug/deps/criterion-0fbc12c0c3c9b2a0.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-0fbc12c0c3c9b2a0: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
