/root/repo/target/debug/deps/dse-e88bb1519194105d.d: crates/dse/src/lib.rs crates/dse/src/anneal.rs crates/dse/src/gp.rs crates/dse/src/hypervolume.rs crates/dse/src/linalg.rs crates/dse/src/mobo.rs crates/dse/src/nsga2.rs crates/dse/src/pareto.rs crates/dse/src/problem.rs crates/dse/src/random.rs Cargo.toml

/root/repo/target/debug/deps/libdse-e88bb1519194105d.rmeta: crates/dse/src/lib.rs crates/dse/src/anneal.rs crates/dse/src/gp.rs crates/dse/src/hypervolume.rs crates/dse/src/linalg.rs crates/dse/src/mobo.rs crates/dse/src/nsga2.rs crates/dse/src/pareto.rs crates/dse/src/problem.rs crates/dse/src/random.rs Cargo.toml

crates/dse/src/lib.rs:
crates/dse/src/anneal.rs:
crates/dse/src/gp.rs:
crates/dse/src/hypervolume.rs:
crates/dse/src/linalg.rs:
crates/dse/src/mobo.rs:
crates/dse/src/nsga2.rs:
crates/dse/src/pareto.rs:
crates/dse/src/problem.rs:
crates/dse/src/random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
