/root/repo/target/debug/deps/sw_opt-921756e7c8677d15.d: crates/sw-opt/src/lib.rs crates/sw-opt/src/codegen.rs crates/sw-opt/src/explorer.rs crates/sw-opt/src/heuristic.rs crates/sw-opt/src/interface.rs crates/sw-opt/src/lowering.rs crates/sw-opt/src/nn.rs crates/sw-opt/src/primitives.rs crates/sw-opt/src/qlearn.rs crates/sw-opt/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libsw_opt-921756e7c8677d15.rmeta: crates/sw-opt/src/lib.rs crates/sw-opt/src/codegen.rs crates/sw-opt/src/explorer.rs crates/sw-opt/src/heuristic.rs crates/sw-opt/src/interface.rs crates/sw-opt/src/lowering.rs crates/sw-opt/src/nn.rs crates/sw-opt/src/primitives.rs crates/sw-opt/src/qlearn.rs crates/sw-opt/src/schedule.rs Cargo.toml

crates/sw-opt/src/lib.rs:
crates/sw-opt/src/codegen.rs:
crates/sw-opt/src/explorer.rs:
crates/sw-opt/src/heuristic.rs:
crates/sw-opt/src/interface.rs:
crates/sw-opt/src/lowering.rs:
crates/sw-opt/src/nn.rs:
crates/sw-opt/src/primitives.rs:
crates/sw-opt/src/qlearn.rs:
crates/sw-opt/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
