/root/repo/target/debug/deps/micro-54b0845edc55fd21.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-54b0845edc55fd21.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
