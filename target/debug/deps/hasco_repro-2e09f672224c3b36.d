/root/repo/target/debug/deps/hasco_repro-2e09f672224c3b36.d: src/lib.rs

/root/repo/target/debug/deps/libhasco_repro-2e09f672224c3b36.rmeta: src/lib.rs

src/lib.rs:
