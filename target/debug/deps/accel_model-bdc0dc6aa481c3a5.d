/root/repo/target/debug/deps/accel_model-bdc0dc6aa481c3a5.d: crates/accel-model/src/lib.rs crates/accel-model/src/arch.rs crates/accel-model/src/area.rs crates/accel-model/src/cost.rs crates/accel-model/src/energy.rs crates/accel-model/src/isa.rs crates/accel-model/src/metrics.rs crates/accel-model/src/plan.rs crates/accel-model/src/sim.rs crates/accel-model/src/tech.rs Cargo.toml

/root/repo/target/debug/deps/libaccel_model-bdc0dc6aa481c3a5.rmeta: crates/accel-model/src/lib.rs crates/accel-model/src/arch.rs crates/accel-model/src/area.rs crates/accel-model/src/cost.rs crates/accel-model/src/energy.rs crates/accel-model/src/isa.rs crates/accel-model/src/metrics.rs crates/accel-model/src/plan.rs crates/accel-model/src/sim.rs crates/accel-model/src/tech.rs Cargo.toml

crates/accel-model/src/lib.rs:
crates/accel-model/src/arch.rs:
crates/accel-model/src/area.rs:
crates/accel-model/src/cost.rs:
crates/accel-model/src/energy.rs:
crates/accel-model/src/isa.rs:
crates/accel-model/src/metrics.rs:
crates/accel-model/src/plan.rs:
crates/accel-model/src/sim.rs:
crates/accel-model/src/tech.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
