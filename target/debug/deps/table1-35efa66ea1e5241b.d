/root/repo/target/debug/deps/table1-35efa66ea1e5241b.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-35efa66ea1e5241b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
