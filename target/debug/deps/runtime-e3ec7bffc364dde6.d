/root/repo/target/debug/deps/runtime-e3ec7bffc364dde6.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

/root/repo/target/debug/deps/libruntime-e3ec7bffc364dde6.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/fingerprint.rs:
crates/runtime/src/pool.rs:
