/root/repo/target/debug/deps/hasco_repro-b9c1b9e8bbd03789.d: src/lib.rs

/root/repo/target/debug/deps/libhasco_repro-b9c1b9e8bbd03789.rmeta: src/lib.rs

src/lib.rs:
