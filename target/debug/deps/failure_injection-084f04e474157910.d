/root/repo/target/debug/deps/failure_injection-084f04e474157910.d: tests/failure_injection.rs

/root/repo/target/debug/deps/libfailure_injection-084f04e474157910.rmeta: tests/failure_injection.rs

tests/failure_injection.rs:
