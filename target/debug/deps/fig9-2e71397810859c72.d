/root/repo/target/debug/deps/fig9-2e71397810859c72.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-2e71397810859c72.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
