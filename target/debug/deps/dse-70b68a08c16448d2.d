/root/repo/target/debug/deps/dse-70b68a08c16448d2.d: crates/dse/src/lib.rs crates/dse/src/anneal.rs crates/dse/src/gp.rs crates/dse/src/hypervolume.rs crates/dse/src/linalg.rs crates/dse/src/mobo.rs crates/dse/src/nsga2.rs crates/dse/src/pareto.rs crates/dse/src/problem.rs crates/dse/src/random.rs

/root/repo/target/debug/deps/libdse-70b68a08c16448d2.rmeta: crates/dse/src/lib.rs crates/dse/src/anneal.rs crates/dse/src/gp.rs crates/dse/src/hypervolume.rs crates/dse/src/linalg.rs crates/dse/src/mobo.rs crates/dse/src/nsga2.rs crates/dse/src/pareto.rs crates/dse/src/problem.rs crates/dse/src/random.rs

crates/dse/src/lib.rs:
crates/dse/src/anneal.rs:
crates/dse/src/gp.rs:
crates/dse/src/hypervolume.rs:
crates/dse/src/linalg.rs:
crates/dse/src/mobo.rs:
crates/dse/src/nsga2.rs:
crates/dse/src/pareto.rs:
crates/dse/src/problem.rs:
crates/dse/src/random.rs:
