/root/repo/target/debug/deps/rand-c8e70f31e29f1b6a.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-c8e70f31e29f1b6a: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
