/root/repo/target/debug/deps/fig11-3aba8541b18b22b8.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-3aba8541b18b22b8: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
