/root/repo/target/debug/deps/fig2-503a768636a9915b.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-503a768636a9915b: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
