/root/repo/target/debug/deps/properties-d0225ad98b63900e.d: tests/properties.rs

/root/repo/target/debug/deps/properties-d0225ad98b63900e: tests/properties.rs

tests/properties.rs:
