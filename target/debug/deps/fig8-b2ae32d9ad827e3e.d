/root/repo/target/debug/deps/fig8-b2ae32d9ad827e3e.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-b2ae32d9ad827e3e: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
