/root/repo/target/debug/deps/baselines-96b68509223a9cad.d: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-96b68509223a9cad.rmeta: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/autotvm.rs:
crates/baselines/src/hls.rs:
crates/baselines/src/library.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
