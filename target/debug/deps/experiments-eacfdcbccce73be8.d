/root/repo/target/debug/deps/experiments-eacfdcbccce73be8.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-eacfdcbccce73be8.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
