/root/repo/target/debug/deps/table2-f849e41c2f99c701.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-f849e41c2f99c701: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
