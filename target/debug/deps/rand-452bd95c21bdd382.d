/root/repo/target/debug/deps/rand-452bd95c21bdd382.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-452bd95c21bdd382.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
