/root/repo/target/debug/deps/fig2-54ac086819003cb0.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-54ac086819003cb0.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
