/root/repo/target/debug/deps/hasco_repro-52efae569c4119b4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhasco_repro-52efae569c4119b4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
