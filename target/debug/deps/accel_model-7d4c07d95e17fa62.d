/root/repo/target/debug/deps/accel_model-7d4c07d95e17fa62.d: crates/accel-model/src/lib.rs crates/accel-model/src/arch.rs crates/accel-model/src/area.rs crates/accel-model/src/cost.rs crates/accel-model/src/energy.rs crates/accel-model/src/isa.rs crates/accel-model/src/metrics.rs crates/accel-model/src/plan.rs crates/accel-model/src/sim.rs crates/accel-model/src/tech.rs

/root/repo/target/debug/deps/accel_model-7d4c07d95e17fa62: crates/accel-model/src/lib.rs crates/accel-model/src/arch.rs crates/accel-model/src/area.rs crates/accel-model/src/cost.rs crates/accel-model/src/energy.rs crates/accel-model/src/isa.rs crates/accel-model/src/metrics.rs crates/accel-model/src/plan.rs crates/accel-model/src/sim.rs crates/accel-model/src/tech.rs

crates/accel-model/src/lib.rs:
crates/accel-model/src/arch.rs:
crates/accel-model/src/area.rs:
crates/accel-model/src/cost.rs:
crates/accel-model/src/energy.rs:
crates/accel-model/src/isa.rs:
crates/accel-model/src/metrics.rs:
crates/accel-model/src/plan.rs:
crates/accel-model/src/sim.rs:
crates/accel-model/src/tech.rs:
