/root/repo/target/debug/deps/fig8-476604f145e297fb.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/libfig8-476604f145e297fb.rmeta: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
