/root/repo/target/debug/deps/hw_gen-5f53df0585b3d42a.d: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

/root/repo/target/debug/deps/libhw_gen-5f53df0585b3d42a.rlib: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

/root/repo/target/debug/deps/libhw_gen-5f53df0585b3d42a.rmeta: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

crates/hw-gen/src/lib.rs:
crates/hw-gen/src/chisel.rs:
crates/hw-gen/src/gemmini.rs:
crates/hw-gen/src/primitives.rs:
crates/hw-gen/src/space.rs:
