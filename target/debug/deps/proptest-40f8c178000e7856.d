/root/repo/target/debug/deps/proptest-40f8c178000e7856.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-40f8c178000e7856.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-40f8c178000e7856.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
