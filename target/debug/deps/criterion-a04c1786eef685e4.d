/root/repo/target/debug/deps/criterion-a04c1786eef685e4.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-a04c1786eef685e4.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
