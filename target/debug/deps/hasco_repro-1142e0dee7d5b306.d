/root/repo/target/debug/deps/hasco_repro-1142e0dee7d5b306.d: src/lib.rs

/root/repo/target/debug/deps/hasco_repro-1142e0dee7d5b306: src/lib.rs

src/lib.rs:
