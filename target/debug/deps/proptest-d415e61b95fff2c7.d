/root/repo/target/debug/deps/proptest-d415e61b95fff2c7.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-d415e61b95fff2c7.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
