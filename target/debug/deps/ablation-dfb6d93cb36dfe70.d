/root/repo/target/debug/deps/ablation-dfb6d93cb36dfe70.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-dfb6d93cb36dfe70.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
