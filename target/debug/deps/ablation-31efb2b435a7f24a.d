/root/repo/target/debug/deps/ablation-31efb2b435a7f24a.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-31efb2b435a7f24a.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
