/root/repo/target/debug/deps/fig9-c187dce8bcab6f3d.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-c187dce8bcab6f3d: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
