/root/repo/target/debug/deps/serde_derive-9d96650898f1d141.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-9d96650898f1d141.rmeta: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
