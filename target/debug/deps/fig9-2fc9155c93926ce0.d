/root/repo/target/debug/deps/fig9-2fc9155c93926ce0.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/libfig9-2fc9155c93926ce0.rmeta: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
