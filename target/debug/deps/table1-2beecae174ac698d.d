/root/repo/target/debug/deps/table1-2beecae174ac698d.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-2beecae174ac698d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
