/root/repo/target/debug/deps/fig7-293303afa503856b.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-293303afa503856b.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
