/root/repo/target/debug/deps/micro-976e187416f4d0c9.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-976e187416f4d0c9.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
