/root/repo/target/debug/deps/rand-85820805db5710e1.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-85820805db5710e1.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
