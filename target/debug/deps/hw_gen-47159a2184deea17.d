/root/repo/target/debug/deps/hw_gen-47159a2184deea17.d: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

/root/repo/target/debug/deps/libhw_gen-47159a2184deea17.rmeta: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs

crates/hw-gen/src/lib.rs:
crates/hw-gen/src/chisel.rs:
crates/hw-gen/src/gemmini.rs:
crates/hw-gen/src/primitives.rs:
crates/hw-gen/src/space.rs:
