/root/repo/target/debug/deps/table2-3b4958163a4303ea.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-3b4958163a4303ea.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
