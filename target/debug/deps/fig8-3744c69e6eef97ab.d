/root/repo/target/debug/deps/fig8-3744c69e6eef97ab.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-3744c69e6eef97ab.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
