/root/repo/target/debug/deps/integration-70818fe856de1c08.d: tests/integration.rs

/root/repo/target/debug/deps/libintegration-70818fe856de1c08.rmeta: tests/integration.rs

tests/integration.rs:
