/root/repo/target/debug/deps/fig11-37d9632a1c74011a.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-37d9632a1c74011a: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
