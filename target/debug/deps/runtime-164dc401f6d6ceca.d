/root/repo/target/debug/deps/runtime-164dc401f6d6ceca.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

/root/repo/target/debug/deps/runtime-164dc401f6d6ceca: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/fingerprint.rs crates/runtime/src/pool.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/fingerprint.rs:
crates/runtime/src/pool.rs:
