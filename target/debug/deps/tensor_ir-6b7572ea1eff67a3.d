/root/repo/target/debug/deps/tensor_ir-6b7572ea1eff67a3.d: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs

/root/repo/target/debug/deps/libtensor_ir-6b7572ea1eff67a3.rlib: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs

/root/repo/target/debug/deps/libtensor_ir-6b7572ea1eff67a3.rmeta: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs

crates/tensor-ir/src/lib.rs:
crates/tensor-ir/src/complexity.rs:
crates/tensor-ir/src/expr.rs:
crates/tensor-ir/src/index.rs:
crates/tensor-ir/src/intrinsics.rs:
crates/tensor-ir/src/matching.rs:
crates/tensor-ir/src/suites.rs:
crates/tensor-ir/src/tst.rs:
crates/tensor-ir/src/workload.rs:
