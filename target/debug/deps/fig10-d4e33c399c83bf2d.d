/root/repo/target/debug/deps/fig10-d4e33c399c83bf2d.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-d4e33c399c83bf2d.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
