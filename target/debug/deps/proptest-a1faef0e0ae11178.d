/root/repo/target/debug/deps/proptest-a1faef0e0ae11178.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/proptest-a1faef0e0ae11178: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
