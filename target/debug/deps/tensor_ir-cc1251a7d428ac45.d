/root/repo/target/debug/deps/tensor_ir-cc1251a7d428ac45.d: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libtensor_ir-cc1251a7d428ac45.rmeta: crates/tensor-ir/src/lib.rs crates/tensor-ir/src/complexity.rs crates/tensor-ir/src/expr.rs crates/tensor-ir/src/index.rs crates/tensor-ir/src/intrinsics.rs crates/tensor-ir/src/matching.rs crates/tensor-ir/src/suites.rs crates/tensor-ir/src/tst.rs crates/tensor-ir/src/workload.rs Cargo.toml

crates/tensor-ir/src/lib.rs:
crates/tensor-ir/src/complexity.rs:
crates/tensor-ir/src/expr.rs:
crates/tensor-ir/src/index.rs:
crates/tensor-ir/src/intrinsics.rs:
crates/tensor-ir/src/matching.rs:
crates/tensor-ir/src/suites.rs:
crates/tensor-ir/src/tst.rs:
crates/tensor-ir/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
