/root/repo/target/debug/deps/table1-c89600c574da8657.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-c89600c574da8657.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
