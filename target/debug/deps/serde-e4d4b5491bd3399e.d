/root/repo/target/debug/deps/serde-e4d4b5491bd3399e.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-e4d4b5491bd3399e.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
