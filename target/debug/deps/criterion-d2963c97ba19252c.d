/root/repo/target/debug/deps/criterion-d2963c97ba19252c.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d2963c97ba19252c.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d2963c97ba19252c.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
