/root/repo/target/debug/deps/rand-9a20b046425a9922.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-9a20b046425a9922.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
