/root/repo/target/debug/deps/hw_gen-c836e819ff28e6d9.d: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libhw_gen-c836e819ff28e6d9.rmeta: crates/hw-gen/src/lib.rs crates/hw-gen/src/chisel.rs crates/hw-gen/src/gemmini.rs crates/hw-gen/src/primitives.rs crates/hw-gen/src/space.rs Cargo.toml

crates/hw-gen/src/lib.rs:
crates/hw-gen/src/chisel.rs:
crates/hw-gen/src/gemmini.rs:
crates/hw-gen/src/primitives.rs:
crates/hw-gen/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
