/root/repo/target/debug/deps/failure_injection-1dd77d679e71e0c2.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-1dd77d679e71e0c2.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
