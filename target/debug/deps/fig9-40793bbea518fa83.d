/root/repo/target/debug/deps/fig9-40793bbea518fa83.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-40793bbea518fa83: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
