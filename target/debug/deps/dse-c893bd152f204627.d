/root/repo/target/debug/deps/dse-c893bd152f204627.d: crates/dse/src/lib.rs crates/dse/src/anneal.rs crates/dse/src/gp.rs crates/dse/src/hypervolume.rs crates/dse/src/linalg.rs crates/dse/src/mobo.rs crates/dse/src/nsga2.rs crates/dse/src/pareto.rs crates/dse/src/problem.rs crates/dse/src/random.rs

/root/repo/target/debug/deps/libdse-c893bd152f204627.rlib: crates/dse/src/lib.rs crates/dse/src/anneal.rs crates/dse/src/gp.rs crates/dse/src/hypervolume.rs crates/dse/src/linalg.rs crates/dse/src/mobo.rs crates/dse/src/nsga2.rs crates/dse/src/pareto.rs crates/dse/src/problem.rs crates/dse/src/random.rs

/root/repo/target/debug/deps/libdse-c893bd152f204627.rmeta: crates/dse/src/lib.rs crates/dse/src/anneal.rs crates/dse/src/gp.rs crates/dse/src/hypervolume.rs crates/dse/src/linalg.rs crates/dse/src/mobo.rs crates/dse/src/nsga2.rs crates/dse/src/pareto.rs crates/dse/src/problem.rs crates/dse/src/random.rs

crates/dse/src/lib.rs:
crates/dse/src/anneal.rs:
crates/dse/src/gp.rs:
crates/dse/src/hypervolume.rs:
crates/dse/src/linalg.rs:
crates/dse/src/mobo.rs:
crates/dse/src/nsga2.rs:
crates/dse/src/pareto.rs:
crates/dse/src/problem.rs:
crates/dse/src/random.rs:
