/root/repo/target/debug/deps/table3-dc1aaa10464025b9.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-dc1aaa10464025b9: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
