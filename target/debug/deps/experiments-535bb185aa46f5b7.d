/root/repo/target/debug/deps/experiments-535bb185aa46f5b7.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-535bb185aa46f5b7.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
