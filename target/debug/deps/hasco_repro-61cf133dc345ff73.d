/root/repo/target/debug/deps/hasco_repro-61cf133dc345ff73.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhasco_repro-61cf133dc345ff73.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
