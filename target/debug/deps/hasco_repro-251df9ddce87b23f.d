/root/repo/target/debug/deps/hasco_repro-251df9ddce87b23f.d: src/lib.rs

/root/repo/target/debug/deps/libhasco_repro-251df9ddce87b23f.rlib: src/lib.rs

/root/repo/target/debug/deps/libhasco_repro-251df9ddce87b23f.rmeta: src/lib.rs

src/lib.rs:
