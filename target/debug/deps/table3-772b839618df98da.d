/root/repo/target/debug/deps/table3-772b839618df98da.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-772b839618df98da.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
