/root/repo/target/debug/deps/table2-5819a02cded091d8.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-5819a02cded091d8.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
