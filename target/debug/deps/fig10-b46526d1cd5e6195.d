/root/repo/target/debug/deps/fig10-b46526d1cd5e6195.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-b46526d1cd5e6195: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
