/root/repo/target/debug/deps/rand-9f3af5f62bbf6bbe.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-9f3af5f62bbf6bbe.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-9f3af5f62bbf6bbe.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
