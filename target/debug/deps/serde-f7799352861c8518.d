/root/repo/target/debug/deps/serde-f7799352861c8518.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f7799352861c8518.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
