/root/repo/target/debug/deps/baselines-ce584a852ab2c73c.d: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

/root/repo/target/debug/deps/libbaselines-ce584a852ab2c73c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/autotvm.rs crates/baselines/src/hls.rs crates/baselines/src/library.rs

crates/baselines/src/lib.rs:
crates/baselines/src/autotvm.rs:
crates/baselines/src/hls.rs:
crates/baselines/src/library.rs:
