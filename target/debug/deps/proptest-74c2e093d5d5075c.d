/root/repo/target/debug/deps/proptest-74c2e093d5d5075c.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-74c2e093d5d5075c.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-74c2e093d5d5075c.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
