/root/repo/target/debug/examples/mttkrp_tensorize-16cc918b37e953af.d: examples/mttkrp_tensorize.rs Cargo.toml

/root/repo/target/debug/examples/libmttkrp_tensorize-16cc918b37e953af.rmeta: examples/mttkrp_tensorize.rs Cargo.toml

examples/mttkrp_tensorize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
