/root/repo/target/debug/examples/quickstart-b588ad37b761c187.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b588ad37b761c187.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
