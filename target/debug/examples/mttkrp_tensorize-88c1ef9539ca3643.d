/root/repo/target/debug/examples/mttkrp_tensorize-88c1ef9539ca3643.d: examples/mttkrp_tensorize.rs

/root/repo/target/debug/examples/mttkrp_tensorize-88c1ef9539ca3643: examples/mttkrp_tensorize.rs

examples/mttkrp_tensorize.rs:
