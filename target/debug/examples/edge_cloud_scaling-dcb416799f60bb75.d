/root/repo/target/debug/examples/edge_cloud_scaling-dcb416799f60bb75.d: examples/edge_cloud_scaling.rs

/root/repo/target/debug/examples/edge_cloud_scaling-dcb416799f60bb75: examples/edge_cloud_scaling.rs

examples/edge_cloud_scaling.rs:
