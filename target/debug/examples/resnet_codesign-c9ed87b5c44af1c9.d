/root/repo/target/debug/examples/resnet_codesign-c9ed87b5c44af1c9.d: examples/resnet_codesign.rs Cargo.toml

/root/repo/target/debug/examples/libresnet_codesign-c9ed87b5c44af1c9.rmeta: examples/resnet_codesign.rs Cargo.toml

examples/resnet_codesign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
