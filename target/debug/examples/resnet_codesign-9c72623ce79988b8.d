/root/repo/target/debug/examples/resnet_codesign-9c72623ce79988b8.d: examples/resnet_codesign.rs

/root/repo/target/debug/examples/resnet_codesign-9c72623ce79988b8: examples/resnet_codesign.rs

examples/resnet_codesign.rs:
