/root/repo/target/debug/examples/edge_cloud_scaling-2c0239dc9afe27b1.d: examples/edge_cloud_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libedge_cloud_scaling-2c0239dc9afe27b1.rmeta: examples/edge_cloud_scaling.rs Cargo.toml

examples/edge_cloud_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
