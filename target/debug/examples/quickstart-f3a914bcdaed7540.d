/root/repo/target/debug/examples/quickstart-f3a914bcdaed7540.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f3a914bcdaed7540: examples/quickstart.rs

examples/quickstart.rs:
