/root/repo/target/debug/libhasco_repro.rlib: /root/repo/src/lib.rs
