//! Root crate of the HASCO reproduction workspace; see the member crates.
//! The examples under `examples/` and integration tests under `tests/`
//! exercise the full public API.
